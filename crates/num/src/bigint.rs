//! Sign–magnitude arbitrary-precision integers.
//!
//! The magnitude is a little-endian vector of 32-bit limbs with no trailing
//! zero limbs; the canonical zero has an empty magnitude and [`Sign::Zero`].
//! Division is Knuth's Algorithm D. The representation favours simplicity
//! and correctness: constraint-database coefficients are typically a handful
//! of limbs, so asymptotically fancy multiplication is not worth its
//! complexity here.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// Sign of a [`BigInt`]. Zero is its own sign so that the representation of
/// zero is unique (empty magnitude), which keeps `Eq`/`Hash` structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian base-2^32 limbs; empty iff the value is zero; the most
    /// significant limb is never zero.
    mag: Vec<u32>,
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    /// The offending input.
    pub input: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseBigIntError {}

// ---------------------------------------------------------------------------
// Magnitude (unsigned) helpers. All operate on trimmed little-endian limbs.
// ---------------------------------------------------------------------------

fn trim(mag: &mut Vec<u32>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
        out.push(s as u32);
        carry = s >> BASE_BITS;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Requires `a >= b`.
fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, &limb) in a.iter().enumerate() {
        let d = limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << BASE_BITS)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let t = x as u64 * y as u64 + out[i + j] as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> BASE_BITS;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> BASE_BITS;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn shl_mag(a: &[u32], bits: u32) -> Vec<u32> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (bits / BASE_BITS) as usize;
    let bit_shift = bits % BASE_BITS;
    let mut out = vec![0u32; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u32;
        for &x in a {
            out.push((x << bit_shift) | carry);
            carry = x >> (BASE_BITS - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    trim(&mut out);
    out
}

fn shr_mag(a: &[u32], bits: u32) -> Vec<u32> {
    let limb_shift = (bits / BASE_BITS) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = bits % BASE_BITS;
    let mut out = Vec::with_capacity(a.len() - limb_shift);
    if bit_shift == 0 {
        out.extend_from_slice(&a[limb_shift..]);
    } else {
        let src = &a[limb_shift..];
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (BASE_BITS - bit_shift)));
        }
    }
    trim(&mut out);
    out
}

/// Divide `u` by the single limb `v`, returning (quotient, remainder).
fn divrem_mag_small(u: &[u32], v: u32) -> (Vec<u32>, u32) {
    debug_assert!(v != 0);
    let mut q = vec![0u32; u.len()];
    let mut rem = 0u64;
    for i in (0..u.len()).rev() {
        let cur = (rem << BASE_BITS) | u[i] as u64;
        q[i] = (cur / v as u64) as u32;
        rem = cur % v as u64;
    }
    trim(&mut q);
    (q, rem as u32)
}

/// Knuth Algorithm D long division of magnitudes. Requires `!v.is_empty()`.
fn divrem_mag(u: &[u32], v: &[u32]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(!v.is_empty());
    match cmp_mag(u, v) {
        Ordering::Less => return (Vec::new(), u.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if v.len() == 1 {
        let (q, r) = divrem_mag_small(u, v[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // Normalize so the divisor's top limb has its high bit set.
    let shift = v.last().unwrap().leading_zeros();
    let vn = shl_mag(v, shift);
    let mut un = shl_mag(u, shift);
    let n = vn.len();
    let m = un.len() - n;
    // Ensure un has m + n + 1 limbs (a virtual leading zero).
    un.push(0);

    let b: u64 = 1 << BASE_BITS;
    let mut q = vec![0u32; m + 1];
    let v_hi = vn[n - 1] as u64;
    let v_next = vn[n - 2] as u64;

    for j in (0..=m).rev() {
        let top = (un[j + n] as u64) * b + un[j + n - 1] as u64;
        let mut qhat = top / v_hi;
        let mut rhat = top % v_hi;
        while qhat >= b || qhat * v_next > rhat * b + un[j + n - 2] as u64 {
            qhat -= 1;
            rhat += v_hi;
            if rhat >= b {
                break;
            }
        }

        // Multiply-subtract: un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for i in 0..n {
            let p = qhat * vn[i] as u64 + carry;
            carry = p >> BASE_BITS;
            let d = un[j + i] as i64 - (p as u32) as i64 - borrow;
            if d < 0 {
                un[j + i] = (d + b as i64) as u32;
                borrow = 1;
            } else {
                un[j + i] = d as u32;
                borrow = 0;
            }
        }
        let d = un[j + n] as i64 - carry as i64 - borrow;
        if d < 0 {
            // qhat was one too large: add back.
            un[j + n] = (d + b as i64) as u32;
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let s = un[j + i] as u64 + vn[i] as u64 + c;
                un[j + i] = s as u32;
                c = s >> BASE_BITS;
            }
            un[j + n] = un[j + n].wrapping_add(c as u32);
        } else {
            un[j + n] = d as u32;
        }
        q[j] = qhat as u32;
    }

    trim(&mut q);
    let mut rem = shr_mag(&un[..n], shift);
    trim(&mut rem);
    (q, rem)
}

// ---------------------------------------------------------------------------
// BigInt API
// ---------------------------------------------------------------------------

impl BigInt {
    /// The integer zero.
    pub fn zero() -> BigInt {
        BigInt { sign: Sign::Zero, mag: Vec::new() }
    }

    /// The integer one.
    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    /// Builds a value from a sign and raw limbs (trailing zeros allowed).
    fn from_parts(sign: Sign, mut mag: Vec<u32>) -> BigInt {
        trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Whether this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Whether this value is exactly one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag == [1]
    }

    /// The sign of this value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn abs(&self) -> BigInt {
        if self.sign == Sign::Minus {
            BigInt { sign: Sign::Plus, mag: self.mag.clone() }
        } else {
            self.clone()
        }
    }

    /// Truncating division and remainder (`self = q * other + r`, with `r`
    /// taking the sign of `self`), like Rust's built-in `/` and `%`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q, r) = divrem_mag(&self.mag, &other.mag);
        let q = BigInt::from_parts(self.sign.mul(other.sign), q);
        let r = BigInt::from_parts(self.sign, r);
        (q, r)
    }

    /// Greatest common divisor; always non-negative, `gcd(0, 0) == 0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.divrem(&b).1;
            a = b;
            b = r.abs();
        }
        a
    }

    /// `self * 2^bits`.
    pub fn shl(&self, bits: u32) -> BigInt {
        BigInt::from_parts(self.sign, shl_mag(&self.mag, bits))
    }

    /// `self` raised to a small non-negative power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Number of significant bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => {
                (self.mag.len() as u64 - 1) * BASE_BITS as u64
                    + (BASE_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Best-effort conversion to `f64` (infinite for huge magnitudes).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * (1u64 << BASE_BITS) as f64 + limb as f64;
        }
        match self.sign {
            Sign::Minus => -v,
            _ => v,
        }
    }

    /// Serializes as a sign byte (0 zero, 1 plus, 2 minus) followed by the
    /// magnitude as little-endian bytes (no length prefix; the caller frames).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.mag.len() * 4);
        out.push(match self.sign {
            Sign::Zero => 0,
            Sign::Plus => 1,
            Sign::Minus => 2,
        });
        for limb in &self.mag {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        // Trim trailing zero bytes of the top limb for compactness.
        while out.len() > 1 && *out.last().unwrap() == 0 {
            out.pop();
        }
        out
    }

    /// Inverse of [`Self::to_bytes`]. Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<BigInt> {
        let (&sign_byte, mag_bytes) = bytes.split_first()?;
        let sign = match sign_byte {
            0 => Sign::Zero,
            1 => Sign::Plus,
            2 => Sign::Minus,
            _ => return None,
        };
        let mut mag = Vec::with_capacity(mag_bytes.len().div_ceil(4));
        for chunk in mag_bytes.chunks(4) {
            let mut limb = [0u8; 4];
            limb[..chunk.len()].copy_from_slice(chunk);
            mag.push(u32::from_le_bytes(limb));
        }
        trim(&mut mag);
        if mag.is_empty() {
            if sign != Sign::Zero {
                return None; // canonical form violated
            }
            return Some(BigInt::zero());
        }
        if sign == Sign::Zero {
            return None;
        }
        Some(BigInt { sign, mag })
    }

    /// Exact conversion to `i64`, if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for &limb in self.mag.iter().rev() {
            v = (v << BASE_BITS) | limb as u64;
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(v).ok(),
            Sign::Minus => {
                if v <= i64::MAX as u64 + 1 {
                    Some((v as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        let sign = match v.cmp(&0) {
            Ordering::Less => Sign::Minus,
            Ordering::Equal => Sign::Zero,
            Ordering::Greater => Sign::Plus,
        };
        let mut mag = Vec::new();
        let mut u = v.unsigned_abs();
        while u != 0 {
            mag.push(u as u32);
            u >>= BASE_BITS;
        }
        BigInt { sign, mag }
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let err = || ParseBigIntError { input: s.to_string() };
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (Sign::Minus, &s[1..]),
            Some(b'+') => (Sign::Plus, &s[1..]),
            _ => (Sign::Plus, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err());
        }
        // Consume nine decimal digits at a time (10^9 < 2^32).
        let mut mag: Vec<u32> = Vec::new();
        for chunk in digits.as_bytes().chunks(9).map(|c| std::str::from_utf8(c).unwrap()) {
            let chunk_val: u32 = chunk.parse().map_err(|_| err())?;
            let scale = 10u32.pow(chunk.len() as u32);
            // mag = mag * scale + chunk_val
            let mut carry = chunk_val as u64;
            for limb in mag.iter_mut() {
                let t = *limb as u64 * scale as u64 + carry;
                *limb = t as u32;
                carry = t >> BASE_BITS;
            }
            while carry != 0 {
                mag.push(carry as u32);
                carry >>= BASE_BITS;
            }
        }
        Ok(BigInt::from_parts(sign, mag))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let (q, r) = divrem_mag_small(&mag, 1_000_000_000);
            digits.push(r);
            mag = q;
        }
        let mut out = String::new();
        if self.sign == Sign::Minus {
            out.push('-');
        }
        out.push_str(&digits.pop().unwrap().to_string());
        while let Some(d) = digits.pop() {
            out.push_str(&format!("{:09}", d));
        }
        f.write_str(&out)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0,
            Sign::Zero => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Plus => cmp_mag(&self.mag, &other.mag),
            Sign::Minus => cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: self.sign.negate(), mag: self.mag.clone() }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_parts(a, add_mag(&self.mag, &other.mag)),
            _ => match cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_parts(self.sign, sub_mag(&self.mag, &other.mag))
                }
                Ordering::Less => {
                    BigInt::from_parts(other.sign, sub_mag(&other.mag, &self.mag))
                }
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        BigInt::from_parts(self.sign.mul(other.sign), mul_mag(&self.mag, &other.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divrem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divrem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                $trait::$method(&self, &other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                $trait::$method(&self, other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                $trait::$method(self, &other)
            }
        }
    )*};
}

forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(bi(0), BigInt::zero());
        assert!(bi(0).is_zero());
        assert_eq!(bi(5) - bi(5), BigInt::zero());
        assert_eq!((bi(5) - bi(5)).sign(), Sign::Zero);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(2) - bi(3), bi(-1));
        assert_eq!(bi(-2) * bi(3), bi(-6));
        assert_eq!(bi(-7) / bi(2), bi(-3));
        assert_eq!(bi(-7) % bi(2), bi(-1));
        assert_eq!(bi(7) % bi(-2), bi(1));
    }

    #[test]
    fn large_multiplication_and_division() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
        let (q, r) = p.divrem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn division_with_remainder_reconstructs() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let b: BigInt = "18446744073709551629".parse().unwrap(); // prime > 2^64
        let (q, r) = a.divrem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r >= BigInt::zero() && r < b);
    }

    #[test]
    fn knuth_add_back_case() {
        // Exercise a divisor whose second limb forces qhat correction.
        let u: BigInt = "79228162514264337593543950335".parse().unwrap(); // 2^96 - 1
        let v: BigInt = "79228162514264337593543950336".parse().unwrap(); // 2^96
        let (q, r) = u.divrem(&v);
        assert!(q.is_zero());
        assert_eq!(r, u);
        let (q2, r2) = v.divrem(&u);
        assert_eq!(q2, bi(1));
        assert_eq!(r2, bi(1));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(0)), bi(0));
        assert_eq!(bi(0).gcd(&bi(7)), bi(7));
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "-1", "999999999", "1000000000", "-123456789012345678901234567890"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert_eq!("+42".parse::<BigInt>().unwrap(), bi(42));
    }

    #[test]
    fn ordering() {
        let mut v = vec![bi(3), bi(-10), bi(0), bi(7), bi(-2)];
        v.sort();
        assert_eq!(v, vec![bi(-10), bi(-2), bi(0), bi(3), bi(7)]);
        let big: BigInt = "1234567890123456789012345678901234567890".parse().unwrap();
        assert!(big > bi(i128::MAX)); // 40 digits > 39-digit i128::MAX
        assert!(-&big < bi(i128::MIN));
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(10).pow(0), bi(1));
        assert_eq!(bi(0).pow(0), bi(1)); // convention: 0^0 = 1
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(2).bits(), 2);
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(2).pow(100).bits(), 101);
    }

    #[test]
    fn conversions() {
        assert_eq!(bi(42).to_i64(), Some(42));
        assert_eq!(bi(-42).to_i64(), Some(-42));
        assert_eq!(bi(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(i64::MIN as i128 - 1).to_i64(), None);
        assert_eq!(bi(1_000_000).to_f64(), 1e6);
        assert_eq!(bi(-1_000_000).to_f64(), -1e6);
    }

    #[test]
    fn shl_shifts() {
        assert_eq!(bi(1).shl(32), bi(1i128 << 32));
        assert_eq!(bi(3).shl(70), bi(3i128 << 70));
        assert_eq!(bi(0).shl(99), bi(0));
        assert_eq!(bi(-1).shl(5), bi(-32));
    }
}
