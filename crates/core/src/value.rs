//! Atomic values of relational attributes.

use cqa_num::Rat;
use std::fmt;

/// A value of a relational attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A string.
    Str(String),
    /// An exact rational number.
    Rat(Rat),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for integers.
    pub fn int(v: i64) -> Value {
        Value::Rat(Rat::from_int(v))
    }

    /// Convenience constructor for rationals.
    pub fn rat(r: Rat) -> Value {
        Value::Rat(r)
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Rat(_) => None,
        }
    }

    /// The rational content, if numeric.
    pub fn as_rat(&self) -> Option<&Rat> {
        match self {
            Value::Rat(r) => Some(r),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{:?}", s),
            Value::Rat(r) => write!(f, "{}", r),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::int(v)
    }
}

impl From<Rat> for Value {
    fn from(r: Rat) -> Value {
        Value::Rat(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Value::str("abc");
        assert_eq!(s.as_str(), Some("abc"));
        assert_eq!(s.as_rat(), None);
        let n = Value::int(3);
        assert_eq!(n.as_rat(), Some(&Rat::from_int(3)));
        assert_eq!(n.as_str(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::rat(Rat::from_pair(1, 2)).to_string(), "1/2");
    }

    #[test]
    fn equality_is_exact() {
        assert_eq!(Value::rat(Rat::from_pair(2, 4)), Value::rat(Rat::from_pair(1, 2)));
        assert_ne!(Value::str("1/2"), Value::rat(Rat::from_pair(1, 2)));
    }
}
