//! The rename operator `ρ_{B|A}(R)` (§2.4).
//!
//! Renaming touches only the schema: constraint variables are positional,
//! and positions do not change.

use crate::error::Result;
use crate::relation::HRelation;

/// Renames attribute `from` to `to`.
pub fn rename(rel: &HRelation, from: &str, to: &str) -> Result<HRelation> {
    let schema = rel.schema().rename(from, to)?;
    Ok(HRelation::from_parts(schema, rel.tuples().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::join::join;
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;

    #[test]
    fn rename_preserves_content() {
        let s = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(s);
        r.insert_with(|b| b.range("x", 0, 5)).unwrap();
        let out = rename(&r, "x", "z").unwrap();
        assert!(out.schema().contains("z"));
        assert!(out.contains_point(&[Value::int(3)]).unwrap());
        assert!(rename(&r, "nope", "z").is_err());
        assert!(rename(&r, "x", "x").is_err());
    }

    #[test]
    fn rename_enables_self_join() {
        // ρ is what makes self-joins expressible in the algebra: R(x) ⋈
        // ρ_{y|x}(R) is the cross product of R with itself.
        let s = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(s);
        r.insert_with(|b| b.range("x", 0, 1)).unwrap();
        r.insert_with(|b| b.range("x", 5, 6)).unwrap();
        let renamed = rename(&r, "x", "y").unwrap();
        let out = join(&r, &renamed).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.contains_point(&[Value::int(0), Value::int(6)]).unwrap());
    }
}
