//! The natural-join operator `R₁ ⋈ R₂` (§2.4).
//!
//! Per the paper's remark, cross-product and intersection are special cases
//! (no shared attributes / all attributes shared). Shared **relational**
//! attributes join by value equality (nulls never match — narrow
//! semantics); shared **constraint** attributes join by *conjoining* the
//! two tuples' constraints and keeping satisfiable combinations. Query 3 of
//! the Hurricane case study joins on three shared constraint attributes
//! (`t`, `x`, `y`) this way.

use crate::error::Result;
use crate::par::{try_flat_map_chunks, ExecOptions, ExecStats};
use crate::relation::{remap_vars, HRelation};
use crate::schema::AttrKind;
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::{Conjunction, QuickBox, Var};
use std::collections::HashMap;

/// The tuple's values at `positions`, or `None` if any is null (narrow
/// semantics: a null shared attribute never joins).
fn shared_key<'t>(
    t: &'t Tuple,
    positions: impl Iterator<Item = usize>,
) -> Option<Vec<&'t Value>> {
    positions.map(|i| t.value(i)).collect()
}

/// Applies the natural join with default [`ExecOptions`].
pub fn join(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    join_opts(left, right, &ExecOptions::default(), &ExecStats::new())
}

/// Applies the natural join with explicit execution options.
///
/// The right side is prepared **once**: each right tuple's constraint is
/// remapped into output variable positions and its conservative bounding
/// box computed up front, instead of per pair. The outer (left) loop then
/// runs on the deterministic chunked executor; pair order — and therefore
/// output order — matches the serial nested loop exactly.
///
/// With `bbox_filter` on, a pair whose boxes are provably disjoint skips
/// the conjoin-and-decide step. Such pairs are exactly unsatisfiable
/// combinations, which the exact path would drop anyway, so the output is
/// bit-identical with the filter off.
pub fn join_opts(
    left: &HRelation,
    right: &HRelation,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    let ls = left.schema();
    let rs = right.schema();
    let out_schema = ls.join(rs)?;
    let arity = out_schema.arity();

    // For each right attribute: its position in the output schema.
    let right_to_out: Vec<usize> = rs
        .attrs()
        .iter()
        .map(|a| out_schema.position(&a.name).expect("join schema covers right"))
        .collect();
    // Right constraint vars remapped to output positions.
    let mapping: Vec<(Var, Var)> = rs
        .constraint_positions()
        .map(|i| (rs.var(i), Var(right_to_out[i] as u32)))
        .collect();
    // Shared relational attributes: (left position, right position).
    let shared_rel: Vec<(usize, usize)> = ls
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AttrKind::Relational && rs.contains(&a.name))
        .map(|(i, a)| (i, rs.position(&a.name).expect("contains")))
        .collect();

    // Hoisted right-side preparation (remap + box, once per right tuple).
    let rights: Vec<(&Tuple, Conjunction, QuickBox)> = right
        .tuples()
        .iter()
        .map(|rt| {
            let conj = remap_vars(rt.constraint(), &mapping);
            let bx = conj.quick_box(arity);
            (rt, conj, bx)
        })
        .collect();

    // Hash-partition pre-bucketing on shared relational attributes: the
    // right side is partitioned by its shared-attribute values once, so
    // each left tuple enumerates only value-compatible candidates instead
    // of scanning every right tuple for equality. Buckets keep right-scan
    // order and the left loop is unchanged, so output order — and output
    // content — is bit-identical to the full nested loop. Rights with a
    // null shared value go in no bucket (narrow semantics).
    let buckets: Option<HashMap<Vec<&Value>, Vec<usize>>> = if shared_rel.is_empty() {
        None
    } else {
        let mut m: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
        for (i, (rt, _, _)) in rights.iter().enumerate() {
            if let Some(key) = shared_key(rt, shared_rel.iter().map(|&(_, ri)| ri)) {
                m.entry(key).or_default().push(i);
            }
        }
        Some(m)
    };
    let all_rights: Vec<usize> = (0..rights.len()).collect();

    let governor = &opts.governor;
    let produced: Vec<Result<Tuple>> =
        try_flat_map_chunks(left.tuples(), opts.effective_threads(), Some(governor.token()), |lt| {
            if let Err(e) = governor.check() {
                return vec![Err(e)];
            }
            let candidates: &[usize] = match &buckets {
                None => &all_rights,
                Some(m) => shared_key(lt, shared_rel.iter().map(|&(li, _)| li))
                    .and_then(|key| m.get(&key))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]),
            };
            stats.record_pairs(candidates.len() as u64);
            // Left constraints already sit at output positions (the output
            // schema starts with the left schema), so one box per left
            // tuple serves every pair.
            let left_box = if opts.bbox_filter && !candidates.is_empty() {
                Some(lt.constraint().quick_box(arity))
            } else {
                None
            };
            let mut out = Vec::new();
            for &ri in candidates {
                let (rt, rconj, rbox) = &rights[ri];
                if let Some(lb) = &left_box {
                    let rejected = lb.disjoint(rbox);
                    stats.record(rejected);
                    if rejected {
                        continue;
                    }
                }
                // Constraints: left part keeps its positions; the
                // (pre-remapped) right part is conjoined. Shared constraint
                // attributes thereby intersect.
                let conj = lt.constraint().and(rconj);
                match conj.is_satisfiable_budgeted(governor.fm_budget(stats)) {
                    Ok(false) => continue,
                    Ok(true) => {}
                    Err(e) => {
                        out.push(Err(e.into()));
                        return out;
                    }
                }
                // Values: left slots as-is, right non-shared appended.
                let mut values = lt.values().to_vec();
                values.resize(arity, None);
                for (ri, &oi) in right_to_out.iter().enumerate() {
                    if oi >= ls.arity() {
                        values[oi] = rt.values()[ri].clone();
                    }
                }
                out.push(Ok(Tuple::from_parts(values, conj)));
            }
            out
        })
        .map_err(|_| governor.interrupt_error())?;

    let mut out = HRelation::new(out_schema);
    for t in produced {
        out.insert(t?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;

    fn v(s: &str) -> Value {
        Value::str(s)
    }
    fn n(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn join_on_relational_key() {
        let land = {
            let s = Schema::new(vec![AttrDef::str_rel("landId"), AttrDef::rat_con("x")])
                .unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| b.set("landId", "A").range("x", 0, 2)).unwrap();
            r.insert_with(|b| b.set("landId", "B").range("x", 3, 5)).unwrap();
            r
        };
        let owner = {
            let s = Schema::new(vec![AttrDef::str_rel("name"), AttrDef::str_rel("landId")])
                .unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| b.set("name", "dina").set("landId", "A")).unwrap();
            r.insert_with(|b| b.set("name", "mira").set("landId", "C")).unwrap();
            r.insert_with(|b| b.set("name", "noid")).unwrap(); // null landId
            r
        };
        let out = join(&owner, &land).unwrap();
        assert_eq!(out.len(), 1, "only dina↦A matches; null never joins");
        let names: Vec<&str> =
            out.schema().attrs().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["name", "landId", "x"]);
        assert!(out.contains_point(&[v("dina"), v("A"), n(1)]).unwrap());
        assert!(!out.contains_point(&[v("dina"), v("A"), n(4)]).unwrap());
    }

    #[test]
    fn join_on_shared_constraint_attribute_intersects() {
        // Two unary constraint relations over the same attribute x:
        // intervals [0,10] and [5,20] join to [5,10].
        let make = |lo: i64, hi: i64| {
            let s = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| b.range("x", lo, hi)).unwrap();
            r
        };
        let out = join(&make(0, 10), &make(5, 20)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_point(&[n(7)]).unwrap());
        assert!(!out.contains_point(&[n(3)]).unwrap());
        assert!(!out.contains_point(&[n(15)]).unwrap());
        // Disjoint intervals produce nothing.
        let empty = join(&make(0, 1), &make(5, 6)).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn cross_product_when_no_shared_attributes() {
        let a = {
            let s = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| b.range("x", 0, 1)).unwrap();
            r.insert_with(|b| b.range("x", 2, 3)).unwrap();
            r
        };
        let b = {
            let s = Schema::new(vec![AttrDef::rat_con("y")]).unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|bu| bu.range("y", 5, 6)).unwrap();
            r
        };
        let out = join(&a, &b).unwrap();
        assert_eq!(out.len(), 2, "cross product");
        assert!(out.contains_point(&[n(0), n(5)]).unwrap());
        assert!(out.contains_point(&[n(3), n(6)]).unwrap());
    }

    #[test]
    fn spatio_temporal_join_like_query3() {
        // Land extent [0,2]×[0,2]; hurricane path: the segment x=y over
        // t∈[0,4] moving diagonally: x = t, y = t, 0 ≤ t ≤ 4. The join
        // pins the storm inside the parcel: t ∈ [0,2].
        use cqa_constraints::{Atom, LinExpr};
        let land = {
            let s = Schema::new(vec![
                AttrDef::str_rel("landId"),
                AttrDef::rat_con("x"),
                AttrDef::rat_con("y"),
            ])
            .unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| b.set("landId", "A").range("x", 0, 2).range("y", 0, 2))
                .unwrap();
            r
        };
        let hurricane = {
            let s = Schema::new(vec![
                AttrDef::rat_con("t"),
                AttrDef::rat_con("x"),
                AttrDef::rat_con("y"),
            ])
            .unwrap();
            let mut r = HRelation::new(s);
            r.insert_with(|b| {
                b.range("t", 0, 4)
                    .atom(Atom::eq(LinExpr::var(Var(1)), LinExpr::var(Var(0))))
                    .atom(Atom::eq(LinExpr::var(Var(2)), LinExpr::var(Var(0))))
            })
            .unwrap();
            r
        };
        let out = join(&land, &hurricane).unwrap();
        assert_eq!(out.len(), 1);
        // Schema: landId, x, y, t.
        assert!(out.contains_point(&[v("A"), n(1), n(1), n(1)]).unwrap());
        assert!(!out.contains_point(&[v("A"), n(3), n(3), n(3)]).unwrap(), "outside parcel");
        assert!(!out.contains_point(&[v("A"), n(1), n(2), n(1)]).unwrap(), "off the path");
    }
}
