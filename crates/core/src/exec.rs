//! Bottom-up plan evaluation.
//!
//! Plans are checked for safety, then evaluated by materializing each node
//! — the "efficient bottom-up evaluation strategy" of §2.2 in its simplest
//! correct form. Whole-feature operators evaluate against the catalog's
//! spatial relations and produce ordinary (finite, relational) relations
//! keyed by feature IDs, as §4 prescribes.
//!
//! Evaluation is parameterized by [`ExecOptions`]: the tuple-level
//! operators run on the deterministic chunked executor (output identical
//! for every thread count) and consult the conservative bounding-box
//! filter before exact constraint arithmetic. Base-relation scans are
//! borrowed from the catalog (`Cow`), not cloned, so a scan feeding an
//! operator costs nothing.
//!
//! Tracing and plain execution share **one** evaluator: [`eval`] takes an
//! optional trace sink, so the traced path makes exactly the physical
//! choices (index-assisted selection included) the untraced path makes —
//! `EXPLAIN ANALYZE` reports the plan that actually runs. Per-run totals
//! flush into the global `cqa-obs` metrics registry at run end.

use std::borrow::Cow;
use std::time::{Duration, Instant};

use crate::catalog::Catalog;
use crate::error::Result;
use crate::ops;
use crate::par::{ExecOptions, ExecStats};
use crate::plan::Plan;
use crate::relation::HRelation;
use crate::safety;
use crate::schema::{AttrDef, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Evaluates a plan against a catalog with default [`ExecOptions`]
/// (after a safety check).
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<HRelation> {
    execute_opts(plan, catalog, &ExecOptions::default(), &ExecStats::new())
}

/// Evaluates a plan with explicit execution options; evaluation counters
/// (filter hits, FM calls/peak, index probes, join pairs, DNF growth)
/// accumulate into `stats` across the whole plan.
///
/// The run is governed: the governor in `opts` is armed (deadline reset,
/// token lowered) before evaluation, operators poll its token between
/// chunks, and budget trips surface as typed errors. A run that fails
/// mid-way returns `Err` with **no** partial output — callers registering
/// results only on `Ok` observe all-or-nothing semantics.
pub fn execute_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    safety::check(plan)?;
    opts.governor.arm();
    let tel = QueryTelemetry::start(plan);
    let run = ExecStats::new();
    match eval(plan, catalog, opts, &run, None) {
        Ok(out) => {
            let out = out.into_owned();
            stats.absorb(&run);
            finish_run(&run, opts, out.len());
            tel.finish_ok(&run, opts, out.len() as u64, None);
            Ok(out)
        }
        Err(e) => {
            tel.finish_err(&run, opts, &e);
            Err(e)
        }
    }
}

/// Per-node evaluation statistics, mirroring the plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Operator label, including the physical choice (e.g. `Scan R`,
    /// `Select`, `Select (index [x, y])`, `Join`).
    pub label: String,
    /// Number of (syntactic) tuples this node produced.
    pub rows: usize,
    /// Wall-clock time spent in this node, *excluding* its children.
    pub elapsed: Duration,
    /// Candidate pairs/tuples checked by this node's bounding-box filter.
    pub filter_checked: u64,
    /// How many of those the filter rejected before exact arithmetic.
    pub filter_rejected: u64,
    /// Peak intermediate Fourier–Motzkin atom count inside this node.
    pub fm_peak_atoms: u64,
    /// Fourier–Motzkin elimination runs performed inside this node.
    pub fm_calls: u64,
    /// R*-tree nodes visited by index-assisted selection in this node.
    pub index_accesses: u64,
    /// Join candidate pairs enumerated (after hash pre-bucketing).
    pub pairs_enumerated: u64,
    /// Conjunctions built by DNF negation expansion in this node.
    pub dnf_conjunctions: u64,
    /// Child traces in plan order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    fn from_stats(
        label: String,
        rows: usize,
        elapsed: Duration,
        stats: &ExecStats,
        children: Vec<TraceNode>,
    ) -> TraceNode {
        TraceNode {
            label,
            rows,
            elapsed,
            filter_checked: stats.checked(),
            filter_rejected: stats.rejected(),
            fm_peak_atoms: stats.fm_peak(),
            fm_calls: stats.fm_calls(),
            index_accesses: stats.index_accesses(),
            pairs_enumerated: stats.pairs_enumerated(),
            dnf_conjunctions: stats.dnf_conjunctions(),
            children: children,
        }
    }

    /// Rows flowing *into* this node: what its candidate pool was. For a
    /// join that is the enumerated pair count; otherwise the children's
    /// row counts summed.
    pub fn input_rows(&self) -> u64 {
        if self.pairs_enumerated > 0 {
            self.pairs_enumerated
        } else {
            self.children.iter().map(|c| c.rows as u64).sum()
        }
    }

    /// Output rows over input candidates, when the node has input.
    pub fn selectivity(&self) -> Option<f64> {
        let input = self.input_rows();
        (input > 0 && !self.children.is_empty() || self.pairs_enumerated > 0)
            .then(|| self.rows as f64 / input.max(1) as f64)
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{}{}  [{} row(s), {:.2?}",
            "  ".repeat(depth),
            self.label,
            self.rows,
            self.elapsed
        );
        if self.pairs_enumerated > 0 {
            let _ = write!(out, ", {} pair(s) enumerated", self.pairs_enumerated);
        }
        if self.filter_checked > 0 {
            let _ = write!(
                out,
                ", bbox filter {}/{} rejected",
                self.filter_rejected, self.filter_checked
            );
        }
        if self.index_accesses > 0 {
            let _ = write!(out, ", {} index node(s)", self.index_accesses);
        }
        if self.fm_peak_atoms > 0 {
            let _ = write!(out, ", fm peak {} atom(s)", self.fm_peak_atoms);
        }
        let _ = writeln!(out, "]");
        for c in &self.children {
            c.render(out, depth + 1);
        }
    }

    fn render_analyze(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{}{}  [{} row(s), {:.2?}",
            "  ".repeat(depth),
            self.label,
            self.rows,
            self.elapsed
        );
        if let Some(sel) = self.selectivity() {
            let _ = write!(out, ", selectivity {:.1}%", sel * 100.0);
        }
        if self.pairs_enumerated > 0 {
            let _ = write!(out, ", {} pair(s) enumerated", self.pairs_enumerated);
        }
        if self.filter_checked > 0 {
            let _ = write!(
                out,
                ", bbox filter {}/{} rejected",
                self.filter_rejected, self.filter_checked
            );
        }
        if self.index_accesses > 0 {
            let _ = write!(out, ", {} index node(s) accessed", self.index_accesses);
        }
        if self.fm_calls > 0 {
            let _ = write!(
                out,
                ", fm {} call(s) peak {} atom(s)",
                self.fm_calls, self.fm_peak_atoms
            );
        }
        if self.dnf_conjunctions > 0 {
            let _ = write!(out, ", dnf {} conjunction(s) built", self.dnf_conjunctions);
        }
        let _ = writeln!(out, "]");
        for c in &self.children {
            c.render_analyze(out, depth + 1);
        }
    }

    /// Canonical identity of the whole trace, excluding wall time — two
    /// runs of the same workload produce identical identities regardless
    /// of thread count.
    pub fn identity(&self) -> String {
        let mut out = String::new();
        self.identity_into(&mut out, 0);
        out
    }

    fn identity_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{}{} rows={} filter={}/{} fm={}@{} index={} pairs={} dnf={}",
            "  ".repeat(depth),
            self.label,
            self.rows,
            self.filter_rejected,
            self.filter_checked,
            self.fm_calls,
            self.fm_peak_atoms,
            self.index_accesses,
            self.pairs_enumerated,
            self.dnf_conjunctions,
        );
        for c in &self.children {
            c.identity_into(out, depth + 1);
        }
    }

    /// Machine-readable span tree (the `\trace json` payload).
    pub fn to_json(&self) -> cqa_obs::json::Json {
        use cqa_obs::json::Json;
        Json::Obj(vec![
            ("label".into(), Json::str(self.label.clone())),
            ("rows".into(), Json::from_u64(self.rows as u64)),
            ("elapsed_ns".into(), Json::from_u64(self.elapsed.as_nanos() as u64)),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("filter_checked".into(), Json::from_u64(self.filter_checked)),
                    ("filter_rejected".into(), Json::from_u64(self.filter_rejected)),
                    ("fm_peak_atoms".into(), Json::from_u64(self.fm_peak_atoms)),
                    ("fm_calls".into(), Json::from_u64(self.fm_calls)),
                    ("index_accesses".into(), Json::from_u64(self.index_accesses)),
                    ("pairs_enumerated".into(), Json::from_u64(self.pairs_enumerated)),
                    ("dnf_conjunctions".into(), Json::from_u64(self.dnf_conjunctions)),
                ]),
            ),
            ("children".into(), Json::Arr(self.children.iter().map(|c| c.to_json()).collect())),
        ])
    }

    fn fold<A>(&self, acc: A, f: &impl Fn(A, &TraceNode) -> A) -> A {
        let mut acc = f(acc, self);
        for c in &self.children {
            acc = c.fold(acc, f);
        }
        acc
    }
}

impl std::fmt::Display for TraceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render(&mut out, 0);
        f.write_str(&out)
    }
}

/// Renders a completed trace as `EXPLAIN ANALYZE` text: the annotated
/// plan tree (per-node wall time, row counts, filter selectivity, index
/// node accesses) followed by run totals and governor budget headroom.
pub fn render_explain_analyze(trace: &TraceNode, opts: &ExecOptions) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    trace.render_analyze(&mut out, 0);
    let total: Duration = trace.fold(Duration::ZERO, &|acc, n| acc + n.elapsed);
    let fm_peak = trace.fold(0u64, &|acc, n| acc.max(n.fm_peak_atoms));
    let fm_calls = trace.fold(0u64, &|acc, n| acc + n.fm_calls);
    let dnf = trace.fold(0u64, &|acc, n| acc + n.dnf_conjunctions);
    let _ = writeln!(out, "totals: {:.2?} wall, {} fm call(s)", total, fm_calls);
    let g = &opts.governor;
    let headroom = |used: u64, limit: Option<u64>| match limit {
        Some(l) => format!("{}/{} ({}% headroom)", used, l, 100u64.saturating_sub(used * 100 / l.max(1))),
        None => format!("{}/unlimited", used),
    };
    let _ = writeln!(
        out,
        "governor: {} check(s); fm atoms {}; dnf conjunctions {}; output tuples {}",
        g.checks(),
        headroom(fm_peak, g.budgets.max_fm_atoms),
        headroom(dnf, g.budgets.max_dnf_conjunctions),
        headroom(trace.rows as u64, g.budgets.max_output_tuples),
    );
    out
}

/// Evaluates a plan, also producing a per-node trace (row counts,
/// self-times, filter hit rates, index accesses) — the data behind the
/// `EXPLAIN ANALYZE` of the CQA layer. Uses default [`ExecOptions`].
///
/// The traced evaluator **is** the plain evaluator with a trace sink
/// attached: physical choices (index-assisted selection included) and
/// results are identical to [`execute`].
pub fn execute_traced(plan: &Plan, catalog: &Catalog) -> Result<(HRelation, TraceNode)> {
    execute_traced_opts(plan, catalog, &ExecOptions::default(), &ExecStats::new())
}

/// [`execute_traced`] with explicit execution options; counters also
/// accumulate into `stats` (absorbed at run end, like [`execute_opts`]).
pub fn execute_traced_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<(HRelation, TraceNode)> {
    safety::check(plan)?;
    opts.governor.arm();
    let tel = QueryTelemetry::start(plan);
    let run = ExecStats::new();
    let mut roots: Vec<TraceNode> = Vec::new();
    match eval(plan, catalog, opts, &run, Some(&mut roots)) {
        Ok(rel) => {
            let rel = rel.into_owned();
            stats.absorb(&run);
            finish_run(&run, opts, rel.len());
            let trace = roots.pop().expect("traced eval pushes exactly one root");
            tel.finish_ok(&run, opts, rel.len() as u64, Some(&trace));
            Ok((rel, trace))
        }
        Err(e) => {
            tel.finish_err(&run, opts, &e);
            Err(e)
        }
    }
}

/// Run-end bookkeeping: mirrors the run's counters into the global
/// `cqa-obs` registry (when enabled), plus run count, output rows, and
/// governor checks.
fn finish_run(run: &ExecStats, opts: &ExecOptions, rows: usize) {
    run.flush_global();
    if !cqa_obs::metrics_enabled() {
        return;
    }
    struct RunMetrics {
        runs: &'static cqa_obs::Counter,
        rows_out: &'static cqa_obs::Counter,
        governor_checks: &'static cqa_obs::Counter,
    }
    static M: std::sync::OnceLock<RunMetrics> = std::sync::OnceLock::new();
    let m = M.get_or_init(|| RunMetrics {
        runs: cqa_obs::counter("exec.runs"),
        rows_out: cqa_obs::counter("exec.rows_out"),
        governor_checks: cqa_obs::counter("governor.checks"),
    });
    m.runs.inc();
    m.rows_out.add(rows as u64);
    m.governor_checks.add(opts.governor.checks());
}

/// Per-query telemetry: latency into the `exec.query.latency_us` timing
/// histogram, `query_start`/`query_finish` event-log records, and
/// flight-recorder context + abort dumps.
///
/// Everything is gated on the global switches ([`cqa_obs::metrics_enabled`]
/// as the master, plus the event log's and flight recorder's own installed
/// flags), so an unconfigured process pays a few relaxed loads per query
/// and never renders the plan. Event-log emission is tied to the metrics
/// switch on purpose: "metrics off" is the measured disabled-path
/// configuration, and it must disable the whole enabled path.
struct QueryTelemetry {
    t0: Instant,
    /// Correlation id shared by this query's start and finish events.
    seq: u64,
    /// FNV-1a hash of the rendered plan (stable across runs).
    hash: u64,
    logging: bool,
    flight: bool,
}

fn latency_histogram() -> &'static cqa_obs::Histogram {
    static H: std::sync::OnceLock<&'static cqa_obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| cqa_obs::timing_histogram("exec.query.latency_us"))
}

impl QueryTelemetry {
    fn start(plan: &Plan) -> QueryTelemetry {
        use cqa_obs::json::Json;
        let logging = cqa_obs::metrics_enabled() && cqa_obs::eventlog::enabled();
        let flight = cqa_obs::flight::installed();
        let mut tel = QueryTelemetry { t0: Instant::now(), seq: 0, hash: 0, logging, flight };
        if !(logging || flight) {
            return tel;
        }
        let text = plan.to_string();
        tel.hash = cqa_obs::fnv1a(text.as_bytes());
        if flight {
            // The dump's "which query was active" payload: the rendered
            // plan tree, replaced at every query start.
            cqa_obs::flight::set_context("active_query", Json::str(text));
        }
        if logging {
            tel.seq = cqa_obs::eventlog::next_seq();
            cqa_obs::eventlog::emit(&Json::Obj(vec![
                ("event".into(), Json::str("query_start")),
                ("seq".into(), Json::from_u64(tel.seq)),
                ("ts_ms".into(), Json::from_u64(cqa_obs::eventlog::now_ms())),
                ("query_hash".into(), Json::str(format!("{:016x}", tel.hash))),
            ]));
        }
        tel
    }

    fn finish_ok(&self, run: &ExecStats, opts: &ExecOptions, rows: u64, trace: Option<&TraceNode>) {
        let latency_us = self.t0.elapsed().as_micros() as u64;
        if cqa_obs::metrics_enabled() {
            latency_histogram().record(latency_us);
        }
        if self.logging {
            self.emit_finish("ok", latency_us, run, opts, rows, trace);
        }
    }

    fn finish_err(&self, run: &ExecStats, opts: &ExecOptions, e: &crate::error::CoreError) {
        let latency_us = self.t0.elapsed().as_micros() as u64;
        if cqa_obs::metrics_enabled() {
            latency_histogram().record(latency_us);
        }
        if self.flight && e.is_governor_abort() {
            cqa_obs::flight::record_abort(&format!("governor abort: {}", e));
        }
        if self.logging {
            self.emit_finish(e.outcome(), latency_us, run, opts, 0, None);
        }
    }

    fn emit_finish(
        &self,
        outcome: &str,
        latency_us: u64,
        run: &ExecStats,
        opts: &ExecOptions,
        rows: u64,
        trace: Option<&TraceNode>,
    ) {
        use cqa_obs::json::Json;
        let lim = |l: Option<u64>| l.map(Json::from_u64).unwrap_or(Json::Null);
        let b = &opts.governor.budgets;
        let governor = Json::Obj(vec![
            ("checks".into(), Json::from_u64(opts.governor.checks())),
            ("fm_peak_atoms".into(), Json::from_u64(run.fm_peak())),
            ("max_fm_atoms".into(), lim(b.max_fm_atoms)),
            ("dnf_conjunctions".into(), Json::from_u64(run.dnf_conjunctions())),
            ("max_dnf_conjunctions".into(), lim(b.max_dnf_conjunctions)),
            ("output_tuples".into(), Json::from_u64(rows)),
            ("max_output_tuples".into(), lim(b.max_output_tuples)),
        ]);
        let mut fields = vec![
            ("event".into(), Json::str("query_finish")),
            ("seq".into(), Json::from_u64(self.seq)),
            ("ts_ms".into(), Json::from_u64(cqa_obs::eventlog::now_ms())),
            ("query_hash".into(), Json::str(format!("{:016x}", self.hash))),
            ("outcome".into(), Json::str(outcome)),
            ("latency_us".into(), Json::from_u64(latency_us)),
            ("rows".into(), Json::from_u64(rows)),
            ("governor".into(), governor),
        ];
        if let Some(t) = trace {
            let mut nodes = Vec::new();
            flatten_nodes(t, &mut nodes);
            fields.push(("nodes".into(), Json::Arr(nodes)));
        }
        cqa_obs::eventlog::emit(&Json::Obj(fields));
    }
}

/// Pre-order flattening of a trace into per-node event-log entries
/// (label, rows, selectivity).
fn flatten_nodes(t: &TraceNode, out: &mut Vec<cqa_obs::json::Json>) {
    use cqa_obs::json::Json;
    out.push(Json::Obj(vec![
        ("label".into(), Json::str(t.label.clone())),
        ("rows".into(), Json::from_u64(t.rows as u64)),
        ("selectivity".into(), t.selectivity().map(Json::Num).unwrap_or(Json::Null)),
    ]));
    for c in &t.children {
        flatten_nodes(c, out);
    }
}

/// The one evaluator. With `trace == None` this is plain evaluation:
/// operators record into `stats` directly. With `trace == Some(sink)`
/// each node runs against a fresh node-local counter set (absorbed into
/// `stats` afterwards, so run totals match the untraced path), is timed,
/// and pushes its [`TraceNode`] — children first, then itself — into the
/// sink. Physical plan choices are made before the mode is consulted, so
/// they cannot diverge.
fn eval<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
    opts: &ExecOptions,
    stats: &ExecStats,
    trace: Option<&mut Vec<TraceNode>>,
) -> Result<Cow<'a, HRelation>> {
    let Some(parent) = trace else {
        let (_label, _elapsed, rel) = eval_node(plan, catalog, opts, stats, stats, None)?;
        // Every node — scans included — answers to the output-tuple
        // budget: a governed run bounds its intermediates wherever they
        // arise.
        opts.governor.guard_output(rel.len())?;
        return Ok(rel);
    };
    let node_stats = ExecStats::new();
    let mut children: Vec<TraceNode> = Vec::new();
    let (label, elapsed, rel) =
        eval_node(plan, catalog, opts, &node_stats, stats, Some(&mut children))?;
    let rows = rel.len();
    opts.governor.guard_output(rows)?;
    stats.absorb(&node_stats);
    let node = TraceNode::from_stats(label, rows, elapsed, &node_stats, children);
    if cqa_obs::spans_enabled() {
        cqa_obs::record_span(
            "exec.node",
            node.label.clone(),
            node.elapsed.as_nanos() as u64,
            vec![
                ("rows", node.rows as u64),
                ("filter_checked", node.filter_checked),
                ("filter_rejected", node.filter_rejected),
                ("fm_calls", node.fm_calls),
                ("index_accesses", node.index_accesses),
                ("pairs_enumerated", node.pairs_enumerated),
            ],
        );
    }
    parent.push(node);
    Ok(rel)
}

/// Evaluates one node: children recurse through [`eval`] (recording into
/// `child_stats` / `children_out`), the node's own operator records into
/// `op_stats`. Returns the label, the node's self-time (children
/// excluded), and the result.
fn eval_node<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
    opts: &ExecOptions,
    op_stats: &ExecStats,
    child_stats: &ExecStats,
    mut children_out: Option<&mut Vec<TraceNode>>,
) -> Result<(String, Duration, Cow<'a, HRelation>)> {
    match plan {
        Plan::Scan(name) => {
            let t0 = Instant::now();
            let rel = Cow::Borrowed(catalog.get(name)?);
            Ok((format!("Scan {}", name), t0.elapsed(), rel))
        }
        Plan::SpatialScan(name) => {
            let t0 = Instant::now();
            let rel = Cow::Owned(crate::spatial_bridge::spatial_to_hrelation(
                catalog.get_spatial(name)?,
            )?);
            Ok((format!("SpatialScan {}", name), t0.elapsed(), rel))
        }
        Plan::Select { input, selection } => {
            // Index-assisted selection over a base relation: decided here,
            // before the trace mode is consulted, so traced and untraced
            // runs make the same physical choice.
            if let Plan::Scan(name) = input.as_ref() {
                let t0 = Instant::now();
                if let Some((result, via)) =
                    try_index_select(catalog, name, selection, opts, op_stats)?
                {
                    let elapsed = t0.elapsed();
                    if let Some(out) = children_out.as_deref_mut() {
                        // The scan child is never materialized on this
                        // path; synthesize its node so the trace still
                        // mirrors the logical plan.
                        let base = catalog.get(name)?;
                        out.push(TraceNode::from_stats(
                            format!("Scan {}", name),
                            base.len(),
                            Duration::ZERO,
                            &ExecStats::new(),
                            Vec::new(),
                        ));
                    }
                    return Ok((format!("Select (index [{}])", via), elapsed, Cow::Owned(result)));
                }
            }
            let rel = eval(input, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::select_opts(&rel, selection, opts, op_stats)?;
            Ok(("Select".to_string(), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::Project { input, attrs } => {
            let rel = eval(input, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::project_opts(&rel, attrs, opts, op_stats)?;
            Ok((format!("Project on {}", attrs.join(", ")), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::Join { left, right } => {
            let l = eval(left, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let r = eval(right, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::join_opts(&l, &r, opts, op_stats)?;
            Ok(("Join".to_string(), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::Union { left, right } => {
            let l = eval(left, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let r = eval(right, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::union(&l, &r)?;
            Ok(("Union".to_string(), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::Difference { left, right } => {
            let l = eval(left, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let r = eval(right, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::difference_opts(&l, &r, opts, op_stats)?;
            Ok(("Difference".to_string(), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::Rename { input, from, to } => {
            let rel = eval(input, catalog, opts, child_stats, children_out.as_deref_mut())?;
            let t0 = Instant::now();
            let out = ops::rename(&rel, from, to)?;
            Ok((format!("Rename {} -> {}", from, to), t0.elapsed(), Cow::Owned(out)))
        }
        Plan::BufferJoin { left, right, distance } => {
            let t0 = Instant::now();
            let l = catalog.get_spatial(left)?;
            let r = catalog.get_spatial(right)?;
            let (pairs, _accesses) =
                cqa_spatial::ops::buffer_join_par(l, r, distance, opts.effective_threads());
            Ok((
                format!("BufferJoin {} and {}", left, right),
                t0.elapsed(),
                Cow::Owned(id_pairs_relation(pairs)),
            ))
        }
        Plan::KNearest { left, right, k } => {
            let t0 = Instant::now();
            let l = catalog.get_spatial(left)?;
            let r = catalog.get_spatial(right)?;
            let out = id_pairs_relation(cqa_spatial::ops::k_nearest_par(
                l,
                r,
                *k,
                opts.effective_threads(),
            ));
            Ok((
                format!("KNearest {} and {} k {}", left, right, k),
                t0.elapsed(),
                Cow::Owned(out),
            ))
        }
        Plan::Distance { .. } => unreachable!("rejected by the safety check"),
    }
}

/// Index-assisted selection over a base relation (the "through the use of
/// indexing" half of §1.1's optimization story): when the scanned relation
/// has an index whose attributes the selection bounds, probe it for
/// candidate tuples and run the exact selection only on those. Returns
/// `None` when no index applies; the result, when `Some`, is identical to
/// the unindexed path (the filter is conservative, the refinement exact)
/// and comes with a label describing the physical choice.
fn try_index_select(
    catalog: &Catalog,
    name: &str,
    selection: &crate::plan::Selection,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<Option<(HRelation, String)>> {
    use crate::plan::{CmpOp, Predicate};
    let rel = catalog.get(name)?;
    let indexes = catalog.indexes(name);
    if indexes.is_empty() || rel.is_empty() {
        return Ok(None);
    }
    // Surface validation errors exactly as the unindexed path would.
    ops::select::validate(rel.schema(), selection)?;

    // Per-attribute f64 bounds from single-attribute linear predicates.
    // Bounds are *widened* slightly: float rounding must never exclude a
    // true match (the refinement re-checks exactly).
    let mut bounds: std::collections::BTreeMap<&str, (f64, f64)> = Default::default();
    for pred in selection.predicates() {
        let Predicate::Linear { terms, constant, op } = pred else { continue };
        if terms.len() != 1 {
            continue;
        }
        let (attr, coeff) = (&terms[0].0, &terms[0].1);
        if coeff.is_zero() {
            continue;
        }
        // c·a + k op 0  ⇔  a op' −k/c, comparison flipping with c's sign.
        let bound = (-(constant) / coeff).to_f64();
        let eps = 1e-9 * (1.0 + bound.abs());
        let upper = matches!(
            (op, coeff.is_positive()),
            (CmpOp::Le | CmpOp::Lt, true) | (CmpOp::Ge | CmpOp::Gt, false)
        );
        let lower = matches!(
            (op, coeff.is_positive()),
            (CmpOp::Ge | CmpOp::Gt, true) | (CmpOp::Le | CmpOp::Lt, false)
        );
        if *op != CmpOp::Eq && !upper && !lower {
            continue; // e.g. <>: contributes no range bound
        }
        let entry = bounds
            .entry(attr.as_str())
            .or_insert((f64::NEG_INFINITY, f64::INFINITY));
        if *op == CmpOp::Eq {
            entry.0 = entry.0.max(bound - eps);
            entry.1 = entry.1.min(bound + eps);
        } else if upper {
            entry.1 = entry.1.min(bound + eps);
        } else if lower {
            entry.0 = entry.0.max(bound - eps);
        }
    }
    if bounds.is_empty() {
        return Ok(None);
    }
    // Contradictory bounds (x ≥ 10 ∧ x ≤ 5): no tuple can pass the
    // selection's conjunction, and an inverted probe rectangle would be
    // rejected by the index. Answer directly.
    if bounds.values().any(|(lo, hi)| lo > hi) {
        return Ok(Some((HRelation::new(rel.schema().clone()), "contradiction".to_string())));
    }

    // Pick the index covering the most bounded attributes.
    let best = indexes
        .iter()
        .max_by_key(|ix| ix.attrs().iter().filter(|a| bounds.contains_key(a.as_str())).count());
    let Some(index) = best else { return Ok(None) };
    let covered =
        index.attrs().iter().filter(|a| bounds.contains_key(a.as_str())).count();
    if covered == 0 {
        return Ok(None);
    }
    let probe: Vec<Option<(f64, f64)>> = index
        .attrs()
        .iter()
        .map(|a| bounds.get(a.as_str()).copied())
        .collect();
    let accesses_before = index.accesses();
    let span_start = cqa_obs::spans_enabled().then(Instant::now);
    let candidates = index.probe(&probe);
    let accesses = index.accesses() - accesses_before;
    stats.record_index_probe(accesses);
    let via = index.attrs().join(", ");
    if let Some(t0) = span_start {
        cqa_obs::record_span(
            "index.probe",
            format!("{} [{}]", name, via),
            t0.elapsed().as_nanos() as u64,
            vec![("accesses", accesses), ("candidates", candidates.len() as u64)],
        );
    }

    // Exact refinement on the candidates only, preserving scan order.
    let mut filtered = HRelation::new(rel.schema().clone());
    for i in candidates {
        filtered.insert(rel.tuples()[i].clone());
    }
    Ok(Some((ops::select_opts(&filtered, selection, opts, stats)?, via)))
}

/// Schema of whole-feature operator outputs: two relational string
/// attributes `id1`, `id2`.
pub fn id_pair_schema() -> Schema {
    Schema::new(vec![AttrDef::str_rel("id1"), AttrDef::str_rel("id2")])
        .expect("static schema is valid")
}

fn id_pairs_relation(pairs: Vec<(String, String)>) -> HRelation {
    let schema = id_pair_schema();
    let mut rel = HRelation::new(schema);
    for (a, b) in pairs {
        let t = Tuple::builder(rel.schema())
            .set("id1", Value::str(a))
            .set("id2", Value::str(b))
            .build()
            .expect("id pair tuple is valid");
        rel.insert(t);
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, Selection};
    use crate::schema::AttrKind;
    use cqa_num::Rat;
    use cqa_spatial::{Feature, Geometry, Point, SpatialRelation};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![
            AttrDef::str_rel("id"),
            AttrDef { name: "x".into(), ty: crate::schema::AttrType::Rat, kind: AttrKind::Constraint },
        ])
        .unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "a").range("x", 0, 10)).unwrap();
        r.insert_with(|b| b.set("id", "b").range("x", 20, 30)).unwrap();
        cat.register("R", r);

        let cities = SpatialRelation::from_features([
            Feature::new("c0", Geometry::Point(Point::from_ints(0, 0))),
            Feature::new("c1", Geometry::Point(Point::from_ints(10, 0))),
        ]);
        let probes = SpatialRelation::from_features([Feature::new(
            "p",
            Geometry::Point(Point::from_ints(1, 0)),
        )]);
        cat.register_spatial("Cities", cities);
        cat.register_spatial("Probes", probes);
        cat
    }

    #[test]
    fn scan_select_project_pipeline() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 2, "both intervals reach x ≥ 5");
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 15))
            .project(&["id"]);
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), Some(&Value::str("b")));
    }

    #[test]
    fn missing_relation_is_an_error() {
        let cat = catalog();
        assert!(execute(&Plan::scan("Nope"), &cat).is_err());
        assert!(execute(
            &Plan::BufferJoin { left: "Nope".into(), right: "Cities".into(), distance: Rat::one() },
            &cat
        )
        .is_err());
    }

    #[test]
    fn buffer_join_produces_id_pairs() {
        let cat = catalog();
        let plan = Plan::BufferJoin {
            left: "Probes".into(),
            right: "Cities".into(),
            distance: Rat::from_int(2),
        };
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out
            .contains_point(&[Value::str("p"), Value::str("c0")])
            .unwrap());
        assert!(out.schema().is_purely_relational(), "whole-feature output is traditional");
    }

    #[test]
    fn knearest_composes_with_algebra() {
        let cat = catalog();
        let plan = Plan::KNearest { left: "Probes".into(), right: "Cities".into(), k: 2 }
            .select(Selection::all().str_eq("id2", "c1"));
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn traced_execution_matches_and_counts() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let plain = execute(&plan, &cat).unwrap();
        let (traced, trace) = execute_traced(&plan, &cat).unwrap();
        assert_eq!(plain, traced);
        // Trace shape mirrors the plan: Project -> Select -> Scan.
        assert!(trace.label.starts_with("Project"));
        assert_eq!(trace.rows, traced.len());
        assert_eq!(trace.children.len(), 1);
        assert!(trace.children[0].label.starts_with("Select"));
        let scan = &trace.children[0].children[0];
        assert_eq!(scan.label, "Scan R");
        assert_eq!(scan.rows, 2);
        let shown = trace.to_string();
        assert!(shown.contains("row(s)"), "{}", shown);
        // The Select node checked its residuals against the bbox filter.
        assert_eq!(trace.children[0].filter_checked, 2);
        // The projection's eliminations are visible per node.
        assert!(trace.fm_calls >= 1, "project runs FM per tuple");
        // Safety still enforced.
        let bad = Plan::Distance { left: "Probes".into(), right: "Cities".into() };
        assert!(execute_traced(&bad, &cat).is_err());
    }

    #[test]
    fn traced_run_accumulates_run_stats_like_untraced() {
        let cat = catalog();
        let plan = Plan::scan("R").select(Selection::all().cmp_int("x", CmpOp::Ge, 5));
        let plain_stats = ExecStats::new();
        execute_opts(&plan, &cat, &ExecOptions::default(), &plain_stats).unwrap();
        let traced_stats = ExecStats::new();
        execute_traced_opts(&plan, &cat, &ExecOptions::default(), &traced_stats).unwrap();
        assert_eq!(plain_stats.checked(), traced_stats.checked());
        assert_eq!(plain_stats.rejected(), traced_stats.rejected());
        assert_eq!(plain_stats.fm_calls(), traced_stats.fm_calls());
    }

    #[test]
    fn traced_and_untraced_share_the_index_path() {
        // The traced evaluator must make the same physical choice as the
        // untraced one — index-assisted selection included.
        let mut cat = catalog();
        cat.build_index("R", &["x"]).unwrap();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 15).cmp_int("x", CmpOp::Le, 40));
        let accesses_before = cat.indexes("R")[0].accesses();
        let plain = execute(&plan, &cat).unwrap();
        let untraced_accesses = cat.indexes("R")[0].accesses() - accesses_before;
        assert!(untraced_accesses > 0, "untraced path probed the index");

        let stats = ExecStats::new();
        let (traced, trace) =
            execute_traced_opts(&plan, &cat, &ExecOptions::default(), &stats).unwrap();
        let traced_accesses = cat.indexes("R")[0].accesses() - accesses_before - untraced_accesses;
        assert_eq!(plain, traced, "identical relations");
        assert_eq!(untraced_accesses, traced_accesses, "identical physical plan");
        assert!(trace.label.contains("index [x]"), "trace reports the choice: {}", trace.label);
        assert_eq!(trace.index_accesses, traced_accesses, "trace counts the probe");
        assert_eq!(stats.index_probes(), 1);
        // The synthesized scan child keeps the tree shape.
        assert_eq!(trace.children.len(), 1);
        assert_eq!(trace.children[0].label, "Scan R");
        // And the identity digest is stable across thread counts.
        let id1 = trace.identity();
        for threads in [1usize, 2, 8] {
            let (rel, t) = execute_traced_opts(
                &plan,
                &cat,
                &ExecOptions::with_threads(threads),
                &ExecStats::new(),
            )
            .unwrap();
            assert_eq!(rel, traced, "threads={}", threads);
            assert_eq!(t.identity(), id1, "threads={}", threads);
        }
    }

    #[test]
    fn explain_analyze_renders_annotations() {
        let mut cat = catalog();
        cat.build_index("R", &["x"]).unwrap();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let opts = ExecOptions::default();
        let (_, trace) = execute_traced_opts(&plan, &cat, &opts, &ExecStats::new()).unwrap();
        let text = render_explain_analyze(&trace, &opts);
        assert!(text.contains("row(s)"), "{}", text);
        assert!(text.contains("index [x]"), "{}", text);
        assert!(text.contains("index node(s) accessed"), "{}", text);
        assert!(text.contains("selectivity"), "{}", text);
        assert!(text.contains("governor:"), "{}", text);
        assert!(text.contains("unlimited"), "{}", text);
        // JSON round-trips through the obs parser.
        let json = trace.to_json().render();
        let parsed = cqa_obs::json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("label").and_then(|l| l.as_str()),
            Some(trace.label.as_str())
        );
    }

    #[test]
    fn execute_opts_matches_default_across_thread_counts() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let base = execute(&plan, &cat).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let stats = ExecStats::new();
            let out =
                execute_opts(&plan, &cat, &ExecOptions::with_threads(threads), &stats).unwrap();
            assert_eq!(base, out, "threads={}", threads);
        }
        // The serial pre-parallelism baseline agrees too (filter off).
        let stats = ExecStats::new();
        let out = execute_opts(&plan, &cat, &ExecOptions::serial(), &stats).unwrap();
        assert_eq!(base, out);
        assert_eq!(stats.checked(), 0, "serial baseline never consults the filter");
    }

    #[test]
    fn index_backed_select_matches_plain_select() {
        // A bigger relation with mixed intervals and a null.
        let schema = Schema::new(vec![
            AttrDef::str_rel("id"),
            AttrDef {
                name: "x".into(),
                ty: crate::schema::AttrType::Rat,
                kind: AttrKind::Constraint,
            },
            AttrDef {
                name: "y".into(),
                ty: crate::schema::AttrType::Rat,
                kind: AttrKind::Constraint,
            },
        ])
        .unwrap();
        let mut rel = HRelation::new(schema);
        for i in 0..200i64 {
            let lo = (i * 7) % 500;
            rel.insert_with(|b| {
                b.set("id", format!("t{}", i).as_str())
                    .range("x", lo, lo + 10)
                    .range("y", (i * 3) % 300, (i * 3) % 300 + 5)
            })
            .unwrap();
        }
        // A broad tuple (no constraints at all) must still be found.
        rel.insert_with(|b| b.set("id", "broad")).unwrap();

        let mut plain = Catalog::new();
        plain.register("R", rel.clone());
        let mut indexed = Catalog::new();
        indexed.register("R", rel);
        indexed.build_index("R", &["x", "y"]).unwrap();
        indexed.build_index("R", &["x"]).unwrap();

        let selections = [
            Selection::all().cmp_int("x", CmpOp::Ge, 100).cmp_int("x", CmpOp::Le, 150),
            Selection::all()
                .cmp_int("x", CmpOp::Ge, 100)
                .cmp_int("x", CmpOp::Lt, 150)
                .cmp_int("y", CmpOp::Le, 50),
            Selection::all().cmp_int("y", CmpOp::Eq, 33),
            Selection::all().cmp_int("x", CmpOp::Gt, 10_000), // empty result
            Selection::all().str_eq("id", "t5").cmp_int("x", CmpOp::Ge, 0),
        ];
        for sel in selections {
            let plan = Plan::scan("R").select(sel.clone());
            let a = execute(&plan, &plain).unwrap();
            let b = execute(&plan, &indexed).unwrap();
            assert_eq!(a, b, "selection {:?}", sel);
        }
        // The index actually got used.
        assert!(
            indexed.indexes("R").iter().any(|ix| ix.accesses() > 0),
            "index probes should have been charged"
        );
    }

    #[test]
    fn index_handles_contradictory_bounds() {
        // x ≥ 10 ∧ x ≤ 5 would form an inverted probe rectangle; the
        // index path must answer "empty" directly instead.
        let mut cat = catalog();
        cat.build_index("R", &["x"]).unwrap();
        let plan = Plan::scan("R").select(
            Selection::all().cmp_int("x", CmpOp::Ge, 10).cmp_int("x", CmpOp::Le, 5),
        );
        let out = execute(&plan, &cat).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn index_ignored_when_it_cannot_help() {
        let cat = {
            let mut c = catalog();
            c.build_index("R", &["x"]).unwrap();
            c
        };
        // A selection that bounds nothing the index covers.
        let plan = Plan::scan("R").select(Selection::all().str_eq("id", "a"));
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(cat.indexes("R")[0].accesses(), 0, "no probe charged");
    }

    #[test]
    fn index_build_rejects_bad_attrs() {
        let mut cat = catalog();
        assert!(cat.build_index("R", &["id"]).is_err(), "string attribute");
        assert!(cat.build_index("R", &[]).is_err());
        assert!(cat.build_index("R", &["x", "x", "x"]).is_err());
        assert!(cat.build_index("Nope", &["x"]).is_err());
        // Re-registering drops stale indexes.
        cat.build_index("R", &["x"]).unwrap();
        assert_eq!(cat.indexes("R").len(), 1);
        let rel = cat.get("R").unwrap().clone();
        cat.register("R", rel);
        assert!(cat.indexes("R").is_empty());
    }

    #[test]
    fn governor_trips_are_typed_errors() {
        use crate::error::CoreError;
        let cat = catalog();
        let plan = Plan::scan("R").select(Selection::all().cmp_int("x", CmpOp::Ge, 0));

        // Output-tuple budget: the scan node itself (2 tuples) exceeds 1.
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_output_tuples = Some(1);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "output tuples", used: 2, limit: 1 })
        ));

        // An already-elapsed deadline: DeadlineExceeded on every thread count.
        for threads in [1usize, 4] {
            let mut opts = ExecOptions::with_threads(threads);
            opts.governor.timeout = Some(std::time::Duration::ZERO);
            assert_eq!(
                execute_opts(&plan, &cat, &opts, &ExecStats::new()),
                Err(CoreError::DeadlineExceeded),
                "threads={}",
                threads
            );
        }

        // Deterministic cancellation at the first governor check.
        let opts = ExecOptions::default();
        opts.governor.trip_after(1);
        assert_eq!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::Cancelled)
        );

        // A generous governor changes nothing.
        let mut opts = ExecOptions::default();
        opts.governor.timeout = Some(std::time::Duration::from_secs(3600));
        opts.governor.budgets.max_output_tuples = Some(1_000_000);
        assert_eq!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()).unwrap(),
            execute(&plan, &cat).unwrap()
        );
    }

    #[test]
    fn fm_and_dnf_budgets_bound_the_expensive_operators() {
        use crate::error::CoreError;
        let cat = catalog();

        // Projection eliminates x from 2-atom intervals; a 1-atom FM
        // budget trips, a generous one records the peak instead.
        let plan = Plan::scan("R").project(&["id"]);
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_fm_atoms = Some(1);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "fm atoms", .. })
        ));
        let stats = ExecStats::new();
        execute_opts(&plan, &cat, &ExecOptions::default(), &stats).unwrap();
        assert!(stats.fm_peak() >= 2, "peak gauge saw the interval atoms");
        assert!(stats.fm_calls() >= 2, "one elimination per tuple");

        // Difference's negation expansion answers to the DNF budget.
        let plan = Plan::Difference {
            left: Box::new(Plan::scan("R")),
            right: Box::new(Plan::scan("R")),
        };
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_dnf_conjunctions = Some(0);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "dnf conjunctions", .. })
        ));
        // With room to run, the built-conjunction counter sees the work.
        let stats = ExecStats::new();
        execute_opts(&plan, &cat, &ExecOptions::default(), &stats).unwrap();
        assert!(stats.dnf_conjunctions() > 0, "negation expansion was counted");
    }

    #[test]
    fn unsafe_distance_rejected_before_evaluation() {
        let cat = catalog();
        let plan = Plan::Distance { left: "Probes".into(), right: "Cities".into() };
        assert!(matches!(
            execute(&plan, &cat),
            Err(crate::error::CoreError::UnsafeOperation(_))
        ));
    }
}
