//! Well-Known-Text interchange for vector geometries.
//!
//! §6.2 observes that GIS data "is normally obtained by digitization" and
//! that constraint systems pay "costly conversions in each direction" to
//! talk to the outside world. This module is that direction pair for the
//! vector model: [`to_wkt`] / [`parse_wkt`] handle the `POINT`,
//! `LINESTRING`, and single-ring `POLYGON` forms (holes are out of scope —
//! the data model's polygons are simple rings).
//!
//! Coordinates are exact rationals. Export prints an exact decimal when
//! the expansion terminates within 12 fraction digits and truncates
//! otherwise (flagged by [`to_wkt_checked`]); import parses decimal
//! literals exactly.

use crate::feature::{Geometry, GeometryError};
use crate::geom::Point;
use cqa_num::Rat;
use std::fmt;

/// Maximum fraction digits printed before export truncates.
const MAX_FRAC_DIGITS: usize = 12;

/// WKT parse/print failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WktError {
    /// Input does not follow the grammar.
    Syntax(String),
    /// The coordinates parse but form an invalid geometry.
    Geometry(GeometryError),
}

impl fmt::Display for WktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WktError::Syntax(what) => write!(f, "WKT syntax error: {}", what),
            WktError::Geometry(e) => write!(f, "invalid WKT geometry: {}", e),
        }
    }
}

impl std::error::Error for WktError {}

/// Serializes a geometry to WKT. Coordinates that do not terminate within
/// 12 decimal digits are truncated; use [`to_wkt_checked`] to detect that.
pub fn to_wkt(geom: &Geometry) -> String {
    to_wkt_checked(geom).0
}

/// Serializes to WKT, also reporting whether every coordinate rendered
/// exactly.
pub fn to_wkt_checked(geom: &Geometry) -> (String, bool) {
    let mut exact = true;
    let mut coord = |p: &Point| -> String {
        let (x, xe) = p.x.to_decimal(MAX_FRAC_DIGITS);
        let (y, ye) = p.y.to_decimal(MAX_FRAC_DIGITS);
        exact &= xe && ye;
        format!("{} {}", x, y)
    };
    let text = match geom {
        Geometry::Point(p) => format!("POINT ({})", coord(p)),
        Geometry::Polyline(pts) => {
            let coords: Vec<String> = pts.iter().map(&mut coord).collect();
            format!("LINESTRING ({})", coords.join(", "))
        }
        Geometry::Polygon(ring) => {
            // WKT rings repeat the first vertex at the end.
            let mut coords: Vec<String> = ring.iter().map(&mut coord).collect();
            coords.push(coords[0].clone());
            format!("POLYGON (({}))", coords.join(", "))
        }
    };
    (text, exact)
}

/// Parses a WKT `POINT`, `LINESTRING`, or single-ring `POLYGON`.
pub fn parse_wkt(input: &str) -> Result<Geometry, WktError> {
    let s = input.trim();
    let (head, rest) = s
        .find('(')
        .map(|i| (s[..i].trim().to_ascii_uppercase(), &s[i..]))
        .ok_or_else(|| WktError::Syntax("missing coordinate list".to_string()))?;
    match head.as_str() {
        "POINT" => {
            let pts = parse_coord_list(strip_parens(rest)?)?;
            match pts.as_slice() {
                [p] => Ok(Geometry::Point(p.clone())),
                _ => Err(WktError::Syntax("POINT takes exactly one coordinate".to_string())),
            }
        }
        "LINESTRING" => {
            let pts = parse_coord_list(strip_parens(rest)?)?;
            Geometry::polyline(pts).map_err(WktError::Geometry)
        }
        "POLYGON" => {
            let inner = strip_parens(rest)?.trim();
            let ring_text = strip_parens(inner)?;
            if ring_text.contains('(') || inner[1..].contains('(') {
                return Err(WktError::Syntax(
                    "POLYGON with holes or multiple rings is not supported".to_string(),
                ));
            }
            let mut pts = parse_coord_list(ring_text)?;
            // Drop the repeated closing vertex if present.
            if pts.len() >= 2 && pts.first() == pts.last() {
                pts.pop();
            }
            Geometry::polygon(pts).map_err(WktError::Geometry)
        }
        other => Err(WktError::Syntax(format!("unknown geometry type {:?}", other))),
    }
}

/// Removes one balanced layer of parentheses.
fn strip_parens(s: &str) -> Result<&str, WktError> {
    let s = s.trim();
    if !s.starts_with('(') || !s.ends_with(')') {
        return Err(WktError::Syntax(format!("expected parenthesized list, got {:?}", s)));
    }
    Ok(&s[1..s.len() - 1])
}

fn parse_coord_list(s: &str) -> Result<Vec<Point>, WktError> {
    s.split(',')
        .map(|pair| {
            let mut nums = pair.split_whitespace();
            let x = parse_num(nums.next().ok_or_else(|| miss(pair))?)?;
            let y = parse_num(nums.next().ok_or_else(|| miss(pair))?)?;
            if nums.next().is_some() {
                return Err(WktError::Syntax(format!(
                    "only 2-D coordinates are supported, got {:?}",
                    pair.trim()
                )));
            }
            Ok(Point::new(x, y))
        })
        .collect()
}

fn miss(pair: &str) -> WktError {
    WktError::Syntax(format!("coordinate pair {:?} needs two numbers", pair.trim()))
}

fn parse_num(tok: &str) -> Result<Rat, WktError> {
    let (sign, body) = match tok.strip_prefix('-') {
        Some(b) => (-1i64, b),
        None => (1, tok.strip_prefix('+').unwrap_or(tok)),
    };
    Rat::from_decimal_str(body)
        .map(|r| if sign < 0 { -r } else { r })
        .map_err(|_| WktError::Syntax(format!("bad number {:?}", tok)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn roundtrip_all_kinds() {
        let geoms = vec![
            Geometry::Point(Point::new(Rat::from_pair(5, 2), Rat::from_int(-3))),
            Geometry::polyline(vec![p(0, 0), p(10, 5), p(20, 5)]).unwrap(),
            Geometry::polygon(vec![p(0, 0), p(4, 0), p(4, 4), p(0, 4)]).unwrap(),
        ];
        for g in geoms {
            let (text, exact) = to_wkt_checked(&g);
            assert!(exact, "{}", text);
            let back = parse_wkt(&text).unwrap();
            assert_eq!(back, g, "via {}", text);
        }
    }

    #[test]
    fn export_format() {
        let g = Geometry::Point(Point::new(Rat::from_pair(5, 2), Rat::from_int(7)));
        assert_eq!(to_wkt(&g), "POINT (2.5 7)");
        let line = Geometry::polyline(vec![p(0, 0), p(1, 2)]).unwrap();
        assert_eq!(to_wkt(&line), "LINESTRING (0 0, 1 2)");
        let square = Geometry::polygon(vec![p(0, 0), p(2, 0), p(2, 2), p(0, 2)]).unwrap();
        assert_eq!(to_wkt(&square), "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
    }

    #[test]
    fn inexact_coordinates_flagged() {
        let g = Geometry::Point(Point::new(Rat::from_pair(1, 3), Rat::from_int(0)));
        let (text, exact) = to_wkt_checked(&g);
        assert!(!exact);
        assert!(text.starts_with("POINT (0.333333333333 "), "{}", text);
    }

    #[test]
    fn parse_flexible_whitespace_and_case() {
        let g = parse_wkt("  point( 1.5   -2.25 ) ").unwrap();
        assert_eq!(
            g,
            Geometry::Point(Point::new(Rat::from_pair(3, 2), Rat::from_pair(-9, 4)))
        );
        let g = parse_wkt("Polygon((0 0,4 0,4 4,0 4,0 0))").unwrap();
        assert!(matches!(g, Geometry::Polygon(ref r) if r.len() == 4));
        // Unclosed ring is accepted too (closing vertex optional).
        let g = parse_wkt("POLYGON ((0 0, 4 0, 4 4))").unwrap();
        assert!(matches!(g, Geometry::Polygon(ref r) if r.len() == 3));
    }

    #[test]
    fn errors() {
        assert!(matches!(parse_wkt("BLOB (1 2)"), Err(WktError::Syntax(_))));
        assert!(matches!(parse_wkt("POINT 1 2"), Err(WktError::Syntax(_))));
        assert!(matches!(parse_wkt("POINT (1 2, 3 4)"), Err(WktError::Syntax(_))));
        assert!(matches!(parse_wkt("POINT (1 2 3)"), Err(WktError::Syntax(_))));
        assert!(matches!(parse_wkt("LINESTRING (1 2)"), Err(WktError::Geometry(_))));
        assert!(matches!(
            parse_wkt("POLYGON ((0 0, 1 1, 2 2, 0 0))"),
            Err(WktError::Geometry(_))
        ));
        assert!(matches!(
            parse_wkt("POLYGON ((0 0, 4 0, 4 4), (1 1, 2 1, 2 2))"),
            Err(WktError::Syntax(_))
        ));
        assert!(matches!(parse_wkt("POINT (a b)"), Err(WktError::Syntax(_))));
    }
}
