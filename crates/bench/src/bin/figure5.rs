//! Regenerates **Figure 5** of the paper: "Querying one attribute" — disk
//! accesses vs. query length for the joint and separate strategies, on
//! constraint data (experiment 2-A) and relational data (experiment 2-B).

use cqa_bench::experiments::{experiment_one_attribute, summarize, DataKind};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2003);
    println!("# Figure 5: queries involving one attribute (seed {})", seed);
    println!("# expt 2-A: constraint attributes; expt 2-B: relational attributes");
    for kind in [DataKind::Constraint, DataKind::Relational] {
        let ms = experiment_one_attribute(kind, seed);
        let s = summarize(&ms, 10);
        println!();
        println!("## {} attributes", kind.label());
        println!("{:>14} {:>12} {:>14} {:>8}", "query_len<=", "joint_mean", "separate_mean", "queries");
        for (ub, j, sep, c) in &s.buckets {
            if *c == 0 {
                continue;
            }
            println!("{:>14.1} {:>12.1} {:>14.1} {:>8}", ub, j, sep, c);
        }
        println!(
            "overall means: joint = {:.1}, separate = {:.1}  (joint/separate = {:.2}x)",
            s.means.0,
            s.means.1,
            s.means.0 / s.means.1
        );
    }
    println!();
    println!("# Paper's findings to compare against:");
    println!("#  - separate indices win for one-attribute queries");
    println!("#  - but by less than the joint index wins in Figure 4");
}
