//! Offline stand-in for the `criterion` bench harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use, measuring with a plain monotonic-clock loop: each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a short measurement window, and the mean/min wall-clock per
//! iteration is printed. No statistics, no plots — just honest numbers
//! with the upstream source-level interface, so the bench files compile
//! unchanged against either implementation.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported name parity with `criterion::black_box`.
///
/// An identity function the optimizer must assume has side effects.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkLabel {
    /// The printable name.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The bench context: collects and prints timings.
pub struct Criterion {
    /// Target wall-clock spent measuring each benchmark.
    window: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { window: Duration::from_secs(1), warmup: Duration::from_millis(200) }
    }
}

fn run_one(name: &str, window: Duration, warmup: Duration, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: find an iteration count that fills the warm-up window.
    let mut iters = 1u64;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if b.elapsed >= warmup || iters >= 1 << 40 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measurement: a handful of samples sized to fill the window.
    let sample_iters =
        (window.as_nanos() / (5 * per_iter.as_nanos().max(1))).clamp(1, u64::MAX as u128) as u64;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..5 {
        let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed.checked_div(sample_iters as u32).unwrap_or(Duration::ZERO);
        best = best.min(per);
        total += b.elapsed;
        total_iters += sample_iters;
    }
    let mean = total.checked_div(total_iters as u32).unwrap_or(Duration::ZERO);
    println!("bench: {name:<48} mean {mean:>12.3?}  min {best:>12.3?}");
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<L: IntoBenchmarkLabel>(
        &mut self,
        name: L,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into_label(), self.window, self.warmup, f);
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I, L: IntoBenchmarkLabel>(
        &mut self,
        id: L,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.into_label(), self.window, self.warmup, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<L: IntoBenchmarkLabel>(
        &mut self,
        name: L,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into_label());
        run_one(&label, self.parent.window, self.parent.warmup, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, L: IntoBenchmarkLabel>(
        &mut self,
        id: L,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.parent.window, self.parent.warmup, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion { window: Duration::from_millis(5), warmup: Duration::from_millis(1) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion { window: Duration::from_millis(2), warmup: Duration::from_millis(1) };
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
