#!/usr/bin/env bash
# Repo verification: tier-1 (warnings-as-errors build + full test suite)
# plus the parallel evaluator's determinism gate — the quick speedup grid
# is run twice and the two RESULT_HASH lines must agree (and each run
# already fails internally if any grid cell diverges).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (RUSTFLAGS=-D warnings) =="
RUSTFLAGS="-D warnings" cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== parallel determinism gate: quick grid, twice =="
out1=$(cargo run -q --release -p cqa-bench --bin parallel_speedup -- --quick --out /tmp/verify_parallel_1.json)
echo "$out1"
out2=$(cargo run -q --release -p cqa-bench --bin parallel_speedup -- --quick --out /tmp/verify_parallel_2.json)

hash1=$(echo "$out1" | grep '^RESULT_HASH')
hash2=$(echo "$out2" | grep '^RESULT_HASH')
if [ "$hash1" != "$hash2" ]; then
    echo "NONDETERMINISM across runs: '$hash1' vs '$hash2'" >&2
    exit 1
fi
echo "determinism gate passed: $hash1 (stable across runs and grid cells)"

echo "== fault-matrix gate: injected storage faults stay typed =="
cargo run -q --release -p cqa-bench --bin fault_matrix | tail -2

echo "== observability gates: overhead <= 3%, golden metrics snapshot =="
# --gate makes obs_bench exit non-zero if the full telemetry-enabled
# median (metrics + event log + live sampler) exceeds the disabled
# median by more than 3% on the bench join.
cargo run -q --release -p cqa-bench --bin obs_bench -- --quick --gate --out /tmp/verify_obs.json
# The seeded golden workload must reproduce the committed counter
# snapshot exactly (counts only — no timings — so this is bit-stable).
cargo run -q --release -p cqa-bench --bin obs_bench -- --golden > /tmp/verify_obs_golden.txt
if ! diff -u tests/golden/metrics_seeded.txt /tmp/verify_obs_golden.txt; then
    echo "golden metrics snapshot diverged (see diff above)" >&2
    exit 1
fi
echo "golden metrics snapshot matches"

echo "== telemetry export gate: canonical Prometheus exposition =="
# The same seeded workload rendered through the canonical exporter
# (timing series skipped) must match byte-for-byte — this is the text a
# scraper sees on GET /metrics, minus the wall-clock-dependent series.
cargo run -q --release -p cqa-bench --bin obs_bench -- --golden-prom > /tmp/verify_obs_prom.txt
if ! diff -u tests/golden/prometheus_seeded.txt /tmp/verify_obs_prom.txt; then
    echo "golden Prometheus exposition diverged (see diff above)" >&2
    exit 1
fi
echo "golden Prometheus exposition matches"

echo "== flight-recorder smoke: governor abort + panic both dump =="
cargo run -q --release -p cqa-bench --bin obs_bench -- --flight-smoke 2>/dev/null | grep FLIGHT_SMOKE

echo "== clippy (obs crate, -D warnings) =="
cargo clippy -q -p cqa-obs -- -D warnings
echo "clippy clean"

echo "== verify OK =="
