//! # cqa-storage — the disk-access layer of CQA/CDB
//!
//! Figure 1 of the paper places the Constraint Query Algebra "above the
//! disk access layer"; this crate is that layer. It provides:
//!
//! * [`Page`](page::SlottedPage)-granular storage behind the [`DiskManager`]
//!   trait, with a file-backed implementation ([`FileDisk`]) and an
//!   in-memory one ([`MemDisk`]) for experiments;
//! * a [`BufferPool`] with LRU replacement and **access accounting** —
//!   the "number of disk accesses" metric of the §5.4 experiments is read
//!   off the pool's [`AccessStats`];
//! * [`HeapFile`]s of variable-length records over slotted pages, the
//!   on-disk representation of constraint relations;
//! * a small binary [`codec`] for framing values into records.

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod page;

pub use buffer::{AccessStats, BufferPool};
pub use disk::{DiskManager, FileDisk, MemDisk};
pub use fault::{FaultConfig, FaultCounts, FaultyDisk};
pub use heap::{HeapFile, Rid};
pub use page::{PageId, SlottedPage, PAGE_SIZE};

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id outside the allocated range.
    BadPage(PageId),
    /// A record id whose page/slot does not exist.
    BadRid(heap::Rid),
    /// A record too large to fit a page.
    RecordTooLarge(usize),
    /// Malformed bytes during decoding, with the offending page when known.
    Corrupt {
        /// The page the corruption was detected on, when attributable.
        page: Option<PageId>,
        /// What was malformed.
        what: &'static str,
    },
}

impl StorageError {
    /// Corruption not (yet) attributable to a specific page.
    pub fn corrupt(what: &'static str) -> StorageError {
        StorageError::Corrupt { page: None, what }
    }

    /// Corruption detected on a specific page.
    pub fn corrupt_page(page: PageId, what: &'static str) -> StorageError {
        StorageError::Corrupt { page: Some(page), what }
    }

    /// Attributes a page-less corruption error to `id` (callers that know
    /// which page produced the bytes use this to make reports actionable).
    pub fn at_page(self, id: PageId) -> StorageError {
        match self {
            StorageError::Corrupt { page: None, what } => {
                StorageError::Corrupt { page: Some(id), what }
            }
            other => other,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {}", e),
            StorageError::BadPage(p) => write!(f, "page {} out of range", p.0),
            StorageError::BadRid(r) => write!(f, "record {:?} does not exist", r),
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {} bytes exceeds page capacity", n)
            }
            StorageError::Corrupt { page: Some(p), what } => {
                write!(f, "corrupt data on page {}: {}", p.0, what)
            }
            StorageError::Corrupt { page: None, what } => write!(f, "corrupt data: {}", what),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
