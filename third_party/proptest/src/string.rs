//! String strategies from regex-like patterns.
//!
//! Upstream proptest treats `&str` as a regex defining a string
//! distribution. This shim supports the subset the workspace's tests
//! use: literal characters, character classes `[a-z0-9…]` (with ranges
//! and trailing-`-` literals), the `\PC` "any printable character"
//! escape, and `{n}` / `{n,m}` repetition. Unsupported syntax panics at
//! sample time, loudly, so silent distribution changes cannot creep in.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Item {
    Literal(char),
    /// Inclusive character ranges (single chars are `(c, c)`).
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    item: Item,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Item::Printable,
                    other => panic!("unsupported \\P class {other:?} in {pattern:?}"),
                },
                Some(escaped) => Item::Literal(escaped),
                None => panic!("dangling backslash in {pattern:?}"),
            },
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') => {
                            // A range if between two chars; else literal.
                            match (prev.take(), chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    assert!(lo <= hi, "inverted range in {pattern:?}");
                                    ranges.push((lo, hi));
                                }
                                (p, _) => {
                                    if let Some(p) = p {
                                        ranges.push((p, p));
                                    }
                                    ranges.push(('-', '-'));
                                }
                            }
                        }
                        Some('\\') => {
                            if let Some(p) = prev.replace(
                                chars.next().unwrap_or_else(|| {
                                    panic!("dangling backslash in class of {pattern:?}")
                                }),
                            ) {
                                ranges.push((p, p));
                            }
                        }
                        Some(member) => {
                            if let Some(p) = prev.replace(member) {
                                ranges.push((p, p));
                            }
                        }
                        None => panic!("unterminated class in {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Item::Class(ranges)
            }
            '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '^' | '$' | '.' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?} (shim subset)")
            }
            literal => Item::Literal(literal),
        };
        // Optional repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(d) => spec.push(d),
                    None => panic!("unterminated repetition in {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { item, min, max });
    }
    pieces
}

fn sample_printable(rng: &mut TestRng) -> char {
    if rng.below(5) != 0 {
        // Mostly ASCII printable: the interesting grammar collisions.
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii printable")
    } else {
        // Occasionally an arbitrary non-control scalar value.
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }
}

fn sample_item(item: &Item, rng: &mut TestRng) -> char {
    match item {
        Item::Literal(c) => *c,
        Item::Printable => sample_printable(rng),
        Item::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let size = (*hi as u64 - *lo as u64) + 1;
                if pick < size {
                    // Skip the surrogate gap if a range happens to span it.
                    return char::from_u32(*lo as u32 + pick as u32)
                        .unwrap_or(char::REPLACEMENT_CHARACTER);
                }
                pick -= size;
            }
            unreachable!("class weights exhausted")
        }
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_pattern(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min) as u64 + 1) as u32;
        for _ in 0..count {
            out.push(sample_item(&piece.item, rng));
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn sample_value(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample_value(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(21)
    }

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..300 {
            let s = "[A-Za-z0-9 ,<>=+*._\"()-]{0,60}".sample_value(&mut r);
            assert!(s.chars().count() <= 60);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " ,<>=+*._\"()-".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn identifier_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9]{0,6}".sample_value(&mut r);
            assert!((1..=7).contains(&s.chars().count()));
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn printable_soup_has_no_controls() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "\\PC{0,120}".sample_value(&mut r);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn non_ascii_class_members() {
        let mut r = rng();
        let mut saw_umlaut = false;
        for _ in 0..500 {
            let s = "[a-zäöü]{1,4}".sample_value(&mut r);
            if s.chars().any(|c| "äöü".contains(c)) {
                saw_umlaut = true;
            }
            assert!(s.chars().all(|c| c.is_alphabetic()));
        }
        assert!(saw_umlaut);
    }

    #[test]
    fn exact_repetition() {
        let mut r = rng();
        assert_eq!("x{3}".sample_value(&mut r), "xxx");
    }
}
