//! Seeded pseudo-random number generation for workloads and tests.
//!
//! The §5.4 experiment protocol only needs reproducible uniform draws —
//! coordinates in `[0, 3000]`, extents in `[1, 100]` — so the system
//! carries its own tiny generators instead of an external crate:
//!
//! * [`SplitMix64`] — the Steele–Lea–Flood mixer; one multiply-xor-shift
//!   pipeline per draw. Used to expand a single `u64` seed into the
//!   larger state other generators need, and directly wherever a stream
//!   of well-mixed words is all that is required.
//! * [`Pcg32`] — O'Neill's PCG-XSH-RR 64/32: a 64-bit LCG whose output
//!   is permuted down to 32 bits. Small, fast, and statistically solid
//!   for everything a database benchmark asks of it.
//!
//! Both are deterministic functions of their seed on every platform, so
//! any experiment or test that records its seed is exactly replayable.

/// The SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The PCG-XSH-RR 64/32 generator (O'Neill, 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd.
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator whose 128 bits of state (position + stream)
    /// are expanded from `seed` via [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let state = mix.next_u64();
        let inc = mix.next_u64() | 1;
        let mut rng = Pcg32 { state: 0, inc };
        // Standard PCG initialization: advance once with the increment
        // folded in so nearby seeds do not start in nearby states.
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform draw from `[0, n)`. `n = 0` is a contract violation.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection loop, so
    /// the result is exactly uniform, not merely modulo-folded.
    pub fn gen_below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below_u64(0)");
        // Rejection threshold: draws below `2^64 mod n` would be biased.
        let threshold = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, n)` as a `usize`.
    pub fn gen_below_usize(&mut self, n: usize) -> usize {
        self.gen_below_u64(n as u64) as usize
    }

    /// Uniform draw from the inclusive integer range `[lo, hi]`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            // Full-width range: every word is a valid draw.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_below_u64(span + 1) as i64)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from the closed interval `[lo, hi]`.
    ///
    /// (The chance of hitting `hi` exactly is negligible but permitted,
    /// matching the `[a, b]` phrasing of the §5.4 protocol.)
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567, from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<u64> = {
            let mut g = Pcg32::seed_from_u64(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Pcg32::seed_from_u64(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = Pcg32::seed_from_u64(43);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = g.gen_below_u64(13);
            assert!(v < 13);
            let f = g.gen_range_f64(1.0, 100.0);
            assert!((1.0..=100.0).contains(&f));
            let i = g.gen_range_i64(-5, 5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut g = Pcg32::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[g.gen_below_usize(8)] += 1;
        }
        for &c in &counts {
            // Mean 10,000; a fair generator stays well within ±5%.
            assert!((9_500..10_500).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn full_range_draw_works() {
        let mut g = Pcg32::seed_from_u64(3);
        // Must not overflow the span computation.
        let v = g.gen_range_i64(i64::MIN, i64::MAX);
        let _ = v;
    }
}
