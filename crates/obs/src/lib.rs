//! Unified observability layer for the CQA/CDB stack.
//!
//! The paper's "lessons learned" are empirical: §5's indexing comparison
//! (one multidimensional R*-tree vs. separate 1-D indices) exists only
//! because CQA/CDB could *measure* page accesses and probe costs per
//! operator. This crate is the measurement substrate the rest of the
//! workspace records into:
//!
//! * [`metrics`] — a process-global registry of named atomic counters,
//!   gauges, and fixed-bucket histograms. Registration takes a lock once
//!   per call site (call sites cache the returned `&'static` handle);
//!   recording is a relaxed atomic op guarded by one relaxed flag load,
//!   so a disabled registry costs a branch.
//! * [`span`] — structured spans (FM elimination calls, index probes,
//!   buffer-pool page accesses, plan nodes) recorded into a bounded ring
//!   buffer. Spans carry a deterministic sequence number and payload
//!   counters; wall-time lives in a field excluded from the determinism
//!   digest, so traced runs compare bit-identical across thread counts.
//! * [`json`] — a minimal JSON writer/parser (no external deps) used by
//!   `\trace json`, `\metrics`, and the bench bins' `BENCH_*.json`.
//!
//! Nothing here depends on the rest of the workspace; every other crate
//! may depend on `cqa-obs`.

pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{
    counter, gauge, histogram, metrics_enabled, reset_metrics, set_metrics_enabled, snapshot,
    Counter, Gauge, Histogram, Snapshot,
};
pub use span::{
    drain_spans, record_span, reset_spans, set_span_capacity, set_spans_enabled, spans_enabled,
    Span, SpanTrace,
};
