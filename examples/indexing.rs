//! Multi-attribute indexing (§5): joint vs separate R*-trees, and the
//! index advisor for the paper's open problem.
//!
//! Run with: `cargo run -p cqa --example indexing`

use cqa::index::advisor::{Advisor, QueryProfile};
use cqa::index::strategy::{BoxQuery, IndexStrategy, JointIndex, SeparateIndices};
use cqa::index::RStarParams;

fn main() {
    // Index 2,000 rectangles under both strategies.
    let mut joint = JointIndex::new(RStarParams::fitting_page(2), (0.0, 1000.0));
    let mut separate = SeparateIndices::new(RStarParams::fitting_page(1));
    let mut state = 2003u64;
    let mut rnd = move |max: f64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (u32::MAX as f64 / 2.0) * max
    };
    for i in 0..2000u64 {
        let (x, y) = (rnd(950.0), rnd(950.0));
        let (w, h) = (rnd(40.0) + 1.0, rnd(40.0) + 1.0);
        joint.insert((x, x + w), (y, y + h), i);
        separate.insert((x, x + w), (y, y + h), i);
    }

    // A two-attribute query: the paper's Figure 4 situation.
    let q2 = BoxQuery::both((100.0, 220.0), (400.0, 520.0));
    let (a, b) = (joint.query(&q2), separate.query(&q2));
    assert_eq!(a.ids, b.ids);
    println!("two-attribute query: {} matches", a.ids.len());
    println!("  joint index:      {:>4} disk accesses", a.accesses);
    println!("  separate indices: {:>4} disk accesses (sum of two subqueries)", b.accesses);

    // A one-attribute query: the Figure 5 situation.
    let q1 = BoxQuery::x_only((100.0, 220.0));
    let (a, b) = (joint.query(&q1), separate.query(&q1));
    assert_eq!(a.ids, b.ids);
    println!("one-attribute query: {} matches", a.ids.len());
    println!("  joint index:      {:>4} disk accesses (other attribute min..max)", a.accesses);
    println!("  separate indices: {:>4} disk accesses", b.accesses);

    // The open problem (§5.4): which attribute subsets should share an
    // index? Ask the advisor for two contrasting workloads.
    let advisor = Advisor::new(2, 2000);
    let conjunctive: Vec<QueryProfile> =
        (0..20).map(|_| QueryProfile::new(2, [(0, 0.1), (1, 0.1)])).collect();
    let single: Vec<QueryProfile> = (0..20)
        .map(|i| QueryProfile::new(2, [(i % 2, 0.1)]))
        .collect();
    println!("advisor on a both-attributes workload: {:?}", advisor.recommend(&conjunctive));
    println!("advisor on a one-attribute workload:   {:?}", advisor.recommend(&single));
}
