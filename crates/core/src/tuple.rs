//! Heterogeneous tuples.
//!
//! A tuple of the heterogeneous model carries:
//!
//! * one optional [`Value`] per *relational* attribute — `None` is the SQL
//!   null of the narrow semantics (§3.1);
//! * one [`Conjunction`] of linear constraints over the *constraint*
//!   attributes, addressed positionally (`Var(i)` for schema index `i`).
//!   A constraint attribute not mentioned by the conjunction is
//!   *broad* — it admits every domain value (Definition 1).

use crate::error::{CoreError, Result};
use crate::schema::{AttrKind, AttrType, Schema};
use crate::value::Value;
use cqa_constraints::{Assignment, Atom, Conjunction, LinExpr, Var};
use cqa_num::Rat;
use std::fmt;

/// One heterogeneous tuple; always interpreted relative to a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    /// Slot per schema attribute; constraint slots are always `None`.
    values: Vec<Option<Value>>,
    /// Constraints over the constraint attributes (positional vars).
    constraint: Conjunction,
}

impl Tuple {
    /// Starts building a tuple for `schema`.
    pub fn builder(schema: &Schema) -> TupleBuilder<'_> {
        TupleBuilder {
            schema,
            values: vec![None; schema.arity()],
            constraint: Conjunction::tru(),
            error: None,
        }
    }

    /// Constructs from raw parts (used by operators; validates shape only).
    pub(crate) fn from_parts(values: Vec<Option<Value>>, constraint: Conjunction) -> Tuple {
        Tuple { values, constraint }
    }

    /// The value in slot `i` (always `None` for constraint attributes).
    pub fn value(&self, i: usize) -> Option<&Value> {
        self.values.get(i).and_then(|v| v.as_ref())
    }

    /// All value slots.
    pub(crate) fn values(&self) -> &[Option<Value>] {
        &self.values
    }

    /// The constraint part.
    pub fn constraint(&self) -> &Conjunction {
        &self.constraint
    }

    /// Whether the constraint part is satisfiable (an unsatisfiable tuple
    /// denotes no points and may be dropped by operators).
    pub fn is_satisfiable(&self) -> bool {
        self.constraint.is_satisfiable()
    }

    /// Point membership under heterogeneous semantics: `point` binds every
    /// attribute (by schema position). A null relational slot matches no
    /// value (narrow); an unconstrained constraint attribute matches every
    /// value (broad).
    pub fn contains_point(&self, schema: &Schema, point: &[Value]) -> Result<bool> {
        debug_assert_eq!(point.len(), schema.arity());
        let mut asg = Assignment::new();
        for (i, attr) in schema.attrs().iter().enumerate() {
            match attr.kind {
                AttrKind::Relational => {
                    match &self.values[i] {
                        Some(v) if v == &point[i] => {}
                        _ => return Ok(false), // null or mismatch: narrow
                    }
                }
                AttrKind::Constraint => {
                    let r = point[i].as_rat().ok_or(CoreError::TypeMismatch {
                        attribute: attr.name.clone(),
                        expected: "rational",
                    })?;
                    asg.set(schema.var(i), r.clone());
                }
            }
        }
        Ok(self.constraint.eval(&asg).unwrap_or(false))
    }

    /// Renders the tuple against its schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Tuple, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let mut first = true;
                for (i, attr) in self.1.attrs().iter().enumerate() {
                    if attr.kind == AttrKind::Relational {
                        if !first {
                            write!(f, ", ")?;
                        }
                        match &self.0.values[i] {
                            Some(v) => write!(f, "{} = {}", attr.name, v)?,
                            None => write!(f, "{} = null", attr.name)?,
                        }
                        first = false;
                    }
                }
                let names: Vec<String> =
                    self.1.attrs().iter().map(|a| a.name.clone()).collect();
                let name = move |v: Var| {
                    names.get(v.0 as usize).cloned().unwrap_or_else(|| v.to_string())
                };
                if !self.0.constraint.is_empty() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    let d = self.0.constraint.display_with(&name);
                    write!(f, "{}", d)?;
                } else if self.1.constraint_positions().next().is_some() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "true")?;
                }
                write!(f, ")")
            }
        }
        D(self, schema)
    }
}

/// Incremental tuple construction with validation.
pub struct TupleBuilder<'s> {
    schema: &'s Schema,
    values: Vec<Option<Value>>,
    constraint: Conjunction,
    error: Option<CoreError>,
}

impl<'s> TupleBuilder<'s> {
    /// Sets a relational attribute's value.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        let value = value.into();
        match self.schema.attr(name) {
            Err(e) => self.error = Some(e),
            Ok(attr) => {
                if attr.kind != AttrKind::Relational {
                    self.error = Some(CoreError::BadPredicate(format!(
                        "attribute {:?} is a constraint attribute; use constraints",
                        name
                    )));
                } else {
                    let ok = matches!(
                        (attr.ty, &value),
                        (AttrType::Str, Value::Str(_)) | (AttrType::Rat, Value::Rat(_))
                    );
                    if !ok {
                        self.error = Some(CoreError::TypeMismatch {
                            attribute: name.to_string(),
                            expected: match attr.ty {
                                AttrType::Str => "string",
                                AttrType::Rat => "rational",
                            },
                        });
                    } else {
                        let i = self.schema.position(name).expect("checked");
                        self.values[i] = Some(value);
                    }
                }
            }
        }
        self
    }

    /// Adds a raw constraint atom (variables are schema positions).
    pub fn atom(mut self, atom: Atom) -> Self {
        if self.error.is_some() {
            return self;
        }
        for v in atom.vars() {
            match self.schema.attrs().get(v.0 as usize) {
                Some(a) if a.kind == AttrKind::Constraint => {}
                _ => {
                    self.error = Some(CoreError::BadPredicate(format!(
                        "atom variable {} is not a constraint attribute",
                        v
                    )));
                    return self;
                }
            }
        }
        self.constraint.add(atom);
        self
    }

    /// Constrains `name` to `[lo, hi]`.
    pub fn range(self, name: &str, lo: i64, hi: i64) -> Self {
        self.range_rat(name, Rat::from_int(lo), Rat::from_int(hi))
    }

    /// Constrains `name` to `[lo, hi]` with rational endpoints.
    pub fn range_rat(mut self, name: &str, lo: Rat, hi: Rat) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.var_of(name) {
            Err(e) => {
                self.error = Some(e);
                self
            }
            Ok(v) => self
                .atom(Atom::ge(LinExpr::var(v), LinExpr::constant(lo)))
                .atom(Atom::le(LinExpr::var(v), LinExpr::constant(hi))),
        }
    }

    /// Pins `name` to a single rational value with an equality constraint.
    pub fn pin(mut self, name: &str, value: Rat) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.var_of(name) {
            Err(e) => {
                self.error = Some(e);
                self
            }
            Ok(v) => self.atom(Atom::var_eq_const(v, value)),
        }
    }

    /// Finishes, validating the result.
    pub fn build(self) -> Result<Tuple> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Tuple { values: self.values, constraint: self.constraint })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;

    fn land() -> Schema {
        Schema::new(vec![
            AttrDef::str_rel("landId"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap()
    }

    fn v(s: &str) -> Value {
        Value::str(s)
    }
    fn n(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn builder_happy_path() {
        let s = land();
        let t = Tuple::builder(&s)
            .set("landId", "A")
            .range("x", 0, 2)
            .range("y", 3, 6)
            .build()
            .unwrap();
        assert_eq!(t.value(0), Some(&v("A")));
        assert!(t.is_satisfiable());
        assert!(t.contains_point(&s, &[v("A"), n(1), n(4)]).unwrap());
        assert!(!t.contains_point(&s, &[v("A"), n(5), n(4)]).unwrap());
        assert!(!t.contains_point(&s, &[v("B"), n(1), n(4)]).unwrap());
    }

    #[test]
    fn builder_rejects_bad_usage() {
        let s = land();
        assert!(Tuple::builder(&s).set("x", 3).build().is_err()); // constraint attr by value
        assert!(Tuple::builder(&s).set("landId", 3).build().is_err()); // type error
        assert!(Tuple::builder(&s).set("missing", "v").build().is_err());
        assert!(Tuple::builder(&s).range("landId", 0, 1).build().is_err());
    }

    #[test]
    fn broad_semantics_for_unmentioned_constraint_attr() {
        // Example 2 of the paper: R = {(x = 1)} over {x, y} admits all y.
        let s = Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
        let t = Tuple::builder(&s).pin("x", Rat::from_int(1)).build().unwrap();
        assert!(t.contains_point(&s, &[n(1), n(17)]).unwrap());
        assert!(t.contains_point(&s, &[n(1), n(-999)]).unwrap());
        assert!(!t.contains_point(&s, &[n(2), n(17)]).unwrap());
    }

    #[test]
    fn narrow_semantics_for_null_relational_attr() {
        // The employee with missing age must not match "age = 40".
        let s = Schema::new(vec![AttrDef::str_rel("name"), AttrDef::rat_rel("age")]).unwrap();
        let t = Tuple::builder(&s).set("name", "pat").build().unwrap();
        assert!(!t.contains_point(&s, &[v("pat"), n(40)]).unwrap());
    }

    #[test]
    fn display_shows_both_parts() {
        let s = land();
        let t = Tuple::builder(&s)
            .set("landId", "A")
            .range("x", 0, 2)
            .build()
            .unwrap();
        let shown = t.display(&s).to_string();
        assert!(shown.contains("landId = \"A\""), "{}", shown);
        assert!(shown.contains('x'), "{}", shown);
        // Pure-broad tuple displays `true` for the constraint part.
        let t2 = Tuple::builder(&s).set("landId", "B").build().unwrap();
        assert!(t2.display(&s).to_string().contains("true"));
    }
}
