//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(8);
        let s = vec(0u8..5, 2..=6);
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u8..5, 3usize);
        assert_eq!(exact.sample_value(&mut rng).len(), 3);
    }
}
