//! Exact rational planar geometry.
//!
//! All predicates are exact: orientation is a cross-product sign, and
//! distances are compared through *squared* distances, which stay rational.
//! No epsilon anywhere — this is the "no approximation involved in
//! evaluating queries" property §3.3 of the paper insists on.

use cqa_num::Rat;
use std::fmt;

/// A point in the rational plane.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Rat,
    /// Vertical coordinate.
    pub y: Rat,
}

impl Point {
    /// A point from rational coordinates.
    pub fn new(x: Rat, y: Rat) -> Point {
        Point { x, y }
    }

    /// A point from integer coordinates.
    pub fn from_ints(x: i64, y: i64) -> Point {
        Point::new(Rat::from_int(x), Rat::from_int(y))
    }

    /// Squared Euclidean distance to another point (exact).
    pub fn dist2(&self, other: &Point) -> Rat {
        let dx = &self.x - &other.x;
        let dy = &self.y - &other.y;
        &dx * &dx + &dy * &dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{}", self)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn (c is left of a→b).
    Ccw,
    /// Clockwise turn.
    Cw,
    /// Collinear.
    Collinear,
}

/// Exact orientation test via the cross product
/// `(b - a) × (c - a)`.
pub fn orient(a: &Point, b: &Point, c: &Point) -> Orientation {
    let cross = &(&b.x - &a.x) * &(&c.y - &a.y) - &(&b.y - &a.y) * &(&c.x - &a.x);
    if cross.is_positive() {
        Orientation::Ccw
    } else if cross.is_negative() {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// A closed segment between two points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// A segment between two points.
    pub fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Whether the point lies on the (closed) segment.
    pub fn contains(&self, p: &Point) -> bool {
        if orient(&self.a, &self.b, p) != Orientation::Collinear {
            return false;
        }
        let (xlo, xhi) = minmax(&self.a.x, &self.b.x);
        let (ylo, yhi) = minmax(&self.a.y, &self.b.y);
        &p.x >= xlo && &p.x <= xhi && &p.y >= ylo && &p.y <= yhi
    }

    /// Whether two (closed) segments share at least one point.
    pub fn intersects(&self, other: &Segment) -> bool {
        let (p1, p2, p3, p4) = (&self.a, &self.b, &other.a, &other.b);
        let d1 = orient(p3, p4, p1);
        let d2 = orient(p3, p4, p2);
        let d3 = orient(p1, p2, p3);
        let d4 = orient(p1, p2, p4);
        let opposite = |a: Orientation, b: Orientation| {
            (a == Orientation::Ccw && b == Orientation::Cw)
                || (a == Orientation::Cw && b == Orientation::Ccw)
        };
        if opposite(d1, d2) && opposite(d3, d4) {
            return true;
        }
        (d1 == Orientation::Collinear && other.contains(p1))
            || (d2 == Orientation::Collinear && other.contains(p2))
            || (d3 == Orientation::Collinear && self.contains(p3))
            || (d4 == Orientation::Collinear && self.contains(p4))
    }

    /// Exact squared distance from a point to this segment.
    pub fn dist2_to_point(&self, p: &Point) -> Rat {
        // Project p onto the supporting line; clamp the parameter to [0,1].
        let dx = &self.b.x - &self.a.x;
        let dy = &self.b.y - &self.a.y;
        let len2 = &dx * &dx + &dy * &dy;
        if len2.is_zero() {
            return self.a.dist2(p); // degenerate segment
        }
        let t = (&(&p.x - &self.a.x) * &dx + &(&p.y - &self.a.y) * &dy) / &len2;
        let t = t.max(Rat::zero()).min(Rat::one());
        let cx = &self.a.x + &(&dx * &t);
        let cy = &self.a.y + &(&dy * &t);
        p.dist2(&Point::new(cx, cy))
    }

    /// Exact squared distance between two segments (zero if they touch).
    pub fn dist2_to_segment(&self, other: &Segment) -> Rat {
        if self.intersects(other) {
            return Rat::zero();
        }
        let candidates = [
            self.dist2_to_point(&other.a),
            self.dist2_to_point(&other.b),
            other.dist2_to_point(&self.a),
            other.dist2_to_point(&self.b),
        ];
        candidates.into_iter().min().expect("nonempty")
    }

    /// Squared length.
    pub fn len2(&self) -> Rat {
        self.a.dist2(&self.b)
    }
}

/// Orders two rationals.
pub fn minmax<'a>(a: &'a Rat, b: &'a Rat) -> (&'a Rat, &'a Rat) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Twice the signed area of a polygon ring (positive iff counter-clockwise).
pub fn signed_area2(ring: &[Point]) -> Rat {
    let mut acc = Rat::zero();
    for i in 0..ring.len() {
        let p = &ring[i];
        let q = &ring[(i + 1) % ring.len()];
        acc += &(&(&p.x * &q.y) - &(&q.x * &p.y));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn orientation() {
        assert_eq!(orient(&p(0, 0), &p(1, 0), &p(0, 1)), Orientation::Ccw);
        assert_eq!(orient(&p(0, 0), &p(0, 1), &p(1, 0)), Orientation::Cw);
        assert_eq!(orient(&p(0, 0), &p(1, 1), &p(2, 2)), Orientation::Collinear);
    }

    #[test]
    fn segment_contains() {
        let s = Segment::new(p(0, 0), p(4, 4));
        assert!(s.contains(&p(2, 2)));
        assert!(s.contains(&p(0, 0)));
        assert!(!s.contains(&p(5, 5))); // collinear but outside
        assert!(!s.contains(&p(2, 3)));
        // Rational midpoint.
        let mid = Point::new(Rat::from_pair(1, 2), Rat::from_pair(1, 2));
        assert!(s.contains(&mid));
    }

    #[test]
    fn segment_intersection() {
        let s1 = Segment::new(p(0, 0), p(4, 4));
        let s2 = Segment::new(p(0, 4), p(4, 0));
        assert!(s1.intersects(&s2)); // proper crossing
        let s3 = Segment::new(p(5, 5), p(6, 6));
        assert!(!s1.intersects(&s3)); // collinear, disjoint
        let s4 = Segment::new(p(4, 4), p(6, 4));
        assert!(s1.intersects(&s4)); // endpoint touch
        let s5 = Segment::new(p(2, 2), p(3, 3));
        assert!(s1.intersects(&s5)); // collinear overlap
        let s6 = Segment::new(p(0, 1), p(4, 5));
        assert!(!s1.intersects(&s6)); // parallel
    }

    #[test]
    fn point_segment_distance() {
        let s = Segment::new(p(0, 0), p(4, 0));
        assert_eq!(s.dist2_to_point(&p(2, 3)), Rat::from_int(9)); // interior projection
        assert_eq!(s.dist2_to_point(&p(-3, 4)), Rat::from_int(25)); // clamps to a
        assert_eq!(s.dist2_to_point(&p(7, 4)), Rat::from_int(25)); // clamps to b
        assert_eq!(s.dist2_to_point(&p(2, 0)), Rat::zero()); // on segment
        // Exact rational answer: distance from (1,1) to segment y=x is 1/2.
        let diag = Segment::new(p(0, 0), p(4, 4));
        assert_eq!(diag.dist2_to_point(&p(2, 0)), Rat::from_int(2));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(p(1, 1), p(1, 1));
        assert_eq!(s.dist2_to_point(&p(4, 5)), Rat::from_int(25));
        assert!(s.contains(&p(1, 1)));
        assert_eq!(s.len2(), Rat::zero());
    }

    #[test]
    fn segment_segment_distance() {
        let s1 = Segment::new(p(0, 0), p(4, 0));
        let s2 = Segment::new(p(0, 3), p(4, 3));
        assert_eq!(s1.dist2_to_segment(&s2), Rat::from_int(9));
        let s3 = Segment::new(p(2, -1), p(2, 1));
        assert_eq!(s1.dist2_to_segment(&s3), Rat::zero()); // crossing
        let s4 = Segment::new(p(6, 0), p(8, 0));
        assert_eq!(s1.dist2_to_segment(&s4), Rat::from_int(4)); // endpoint gap
    }

    #[test]
    fn area_sign() {
        let ccw = vec![p(0, 0), p(2, 0), p(2, 2), p(0, 2)];
        assert_eq!(signed_area2(&ccw), Rat::from_int(8));
        let cw: Vec<Point> = ccw.into_iter().rev().collect();
        assert_eq!(signed_area2(&cw), Rat::from_int(-8));
    }
}
